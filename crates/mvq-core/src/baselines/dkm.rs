//! DKM-style baseline (Cho et al., ICLR '22 — the paper's reference \[4\]):
//! *differentiable* k-means that casts clustering as attention. Instead of
//! hard nearest-codeword assignments, each subvector attends to every
//! codeword with weights `softmax(-‖w − c‖² / τ)`, and codewords are
//! updated as attention-weighted means. As τ → 0 the iteration reduces to
//! Lloyd's algorithm; at moderate τ the soft assignments let gradient
//! information (here: the iteration itself) escape poor local minima.
//!
//! The final codebook is *hardened* (nearest-codeword assignment) so its
//! storage model matches ordinary VQ.

use mvq_tensor::{matmul_transpose_b, Tensor};
use rand::Rng;

use crate::baselines::vq_plain::DenseVq;
use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::kernels::{dense_assign_step, KernelStrategy};
use crate::kmeans::{check_data, kmeanspp_init, sse_of, KmeansResult};

/// DKM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DkmConfig {
    /// Number of codewords.
    pub k: usize,
    /// Softmax temperature (distance units²); annealed toward 0.
    pub temperature: f32,
    /// Multiplicative temperature decay per iteration.
    pub anneal: f32,
    /// Soft iterations before hardening.
    pub iters: usize,
    /// Kernel the final hardening assignment dispatches to.
    pub kernel: KernelStrategy,
}

impl DkmConfig {
    /// Defaults: τ = mean pairwise distance scale, annealed 0.9/iter,
    /// 30 iterations.
    pub fn new(k: usize) -> DkmConfig {
        DkmConfig { k, temperature: 1.0, anneal: 0.9, iters: 30, kernel: KernelStrategy::default() }
    }

    /// Overrides the hardening kernel strategy.
    pub fn with_kernel(mut self, kernel: KernelStrategy) -> DkmConfig {
        self.kernel = kernel;
        self
    }
}

/// Runs soft (attention) k-means over the rows of `data`, then hardens.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for degenerate configs.
pub fn dkm_cluster<R: Rng>(
    data: &Tensor,
    cfg: &DkmConfig,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, d) = check_data(data, cfg.k)?;
    if cfg.temperature <= 0.0 || cfg.anneal <= 0.0 || cfg.anneal > 1.0 {
        return Err(MvqError::InvalidConfig(format!(
            "temperature {} / anneal {} out of range",
            cfg.temperature, cfg.anneal
        )));
    }
    let k = cfg.k.min(ng);
    let mut centers = kmeanspp_init(data, k, rng);
    // scale τ to the data's variance so defaults transfer across layers
    let data_scale: f32 =
        data.data().iter().map(|&x| x * x).sum::<f32>() / data.numel().max(1) as f32;
    let mut tau = cfg.temperature * (data_scale * d as f32).max(1e-6);
    let mut attn = vec![0.0f32; ng * k];
    for _ in 0..cfg.iters {
        // distances via the factored form; soft assignments per row
        let xc = matmul_transpose_b(data, &centers)?;
        let cnorm: Vec<f32> = (0..k).map(|i| centers.row(i).iter().map(|&v| v * v).sum()).collect();
        for j in 0..ng {
            let row = xc.row(j);
            let mut logits: Vec<f32> = (0..k).map(|i| -(cnorm[i] - 2.0 * row[i]) / tau).collect();
            let max = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut z = 0.0f32;
            for l in &mut logits {
                *l = (*l - max).exp();
                z += *l;
            }
            for (i, l) in logits.iter().enumerate() {
                attn[j * k + i] = l / z;
            }
        }
        // attention-weighted centroid update
        let mut sums = vec![0.0f64; k * d];
        let mut mass = vec![0.0f64; k];
        for j in 0..ng {
            let row = data.row(j);
            for i in 0..k {
                let a = attn[j * k + i] as f64;
                if a < 1e-12 {
                    continue;
                }
                mass[i] += a;
                for t in 0..d {
                    sums[i * d + t] += a * row[t] as f64;
                }
            }
        }
        for i in 0..k {
            if mass[i] > 1e-12 {
                let c = centers.row_mut(i);
                for t in 0..d {
                    c[t] = (sums[i * d + t] / mass[i]) as f32;
                }
            } else {
                let j = rng.gen_range(0..ng);
                centers.row_mut(i).copy_from_slice(data.row(j));
            }
        }
        tau *= cfg.anneal;
    }
    // harden through the selected kernel (naive oracle or blocked —
    // bit-identical; minibatch hardens with the blocked kernel)
    let mut assign = vec![0u32; ng];
    dense_assign_step(cfg.kernel, data, &centers, &mut assign);
    let sse = sse_of(data, &centers, &assign);
    Ok(KmeansResult {
        codebook: Codebook::new(centers)?,
        assignments: Assignments::new(assign, k)?,
        sse,
        iterations: cfg.iters,
    })
}

/// Compresses a weight tensor with DKM clustering (dense reconstruction,
/// like the other maskless baselines).
///
/// # Errors
///
/// Propagates grouping/clustering errors.
pub fn dkm_compress<R: Rng>(
    weight: &Tensor,
    cfg: &DkmConfig,
    d: usize,
    grouping: GroupingStrategy,
    codebook_bits: Option<u32>,
    rng: &mut R,
) -> Result<DenseVq, MvqError> {
    let grouped = grouping.group(weight, d)?;
    let mut res = dkm_cluster(&grouped, cfg, rng)?;
    if let Some(b) = codebook_bits {
        res.codebook.quantize(b)?;
    }
    Ok(DenseVq::from_clustering(res, weight.dims().to_vec(), grouping, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separates_blobs_like_kmeans() {
        let mut data = Vec::new();
        for i in 0..30 {
            let e = i as f32 * 0.003;
            data.extend_from_slice(&[e, -e]);
            data.extend_from_slice(&[5.0 + e, 5.0 - e]);
        }
        let t = Tensor::from_vec(vec![60, 2], data).unwrap();
        let res = dkm_cluster(&t, &DkmConfig::new(2), &mut StdRng::seed_from_u64(0)).unwrap();
        assert!(res.sse < 0.5, "sse {}", res.sse);
    }

    #[test]
    fn hardened_sse_close_to_lloyd() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = mvq_tensor::uniform(vec![256, 8], -1.0, 1.0, &mut rng);
        let dkm = dkm_cluster(&data, &DkmConfig::new(16), &mut StdRng::seed_from_u64(2)).unwrap();
        let lloyd = crate::kmeans::kmeans(
            &data,
            &crate::kmeans::KmeansConfig::new(16),
            None,
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        // soft clustering should land within 25% of Lloyd's SSE
        assert!(dkm.sse < lloyd.sse * 1.25, "dkm {} vs lloyd {}", dkm.sse, lloyd.sse);
    }

    #[test]
    fn compress_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
        let vq = dkm_compress(
            &w,
            &DkmConfig::new(8),
            16,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            &mut rng,
        )
        .unwrap();
        let r = vq.reconstruct().unwrap();
        assert_eq!(r.dims(), w.dims());
        assert!(vq.storage().mask_bits == 0);
    }

    #[test]
    fn validates_config() {
        let data = Tensor::ones(vec![4, 2]);
        let mut rng = StdRng::seed_from_u64(4);
        let bad = DkmConfig { temperature: 0.0, ..DkmConfig::new(2) };
        assert!(dkm_cluster(&data, &bad, &mut rng).is_err());
        let bad = DkmConfig { anneal: 1.5, ..DkmConfig::new(2) };
        assert!(dkm_cluster(&data, &bad, &mut rng).is_err());
    }
}
