//! Conventional vector quantization — ablation cases A, B and C (paper
//! Fig. 12, Table 3).

use mvq_tensor::Tensor;
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::compress::CompressedMatrix;
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::kernels::KernelStrategy;
use crate::kmeans::{kmeans, KmeansConfig};
use crate::mask::NmMask;
use crate::metrics::{vq_compression_ratio, StorageBreakdown};
use crate::pruning::prune_matrix_nm;

/// A maskless VQ-compressed weight (cases A and B): codebook +
/// assignments, reconstructed densely.
#[derive(Debug, Clone)]
pub struct DenseVq {
    codebook: Codebook,
    assignments: Assignments,
    orig_dims: Vec<usize>,
    grouping: GroupingStrategy,
    d: usize,
    /// Clustering SSE at convergence.
    pub sse: f32,
}

impl DenseVq {
    /// Assembles a [`DenseVq`] from a clustering result (shared with the
    /// PQF/BGD baselines).
    pub(crate) fn from_clustering(
        res: crate::kmeans::KmeansResult,
        orig_dims: Vec<usize>,
        grouping: GroupingStrategy,
        d: usize,
    ) -> DenseVq {
        DenseVq {
            codebook: res.codebook,
            assignments: res.assignments,
            orig_dims,
            grouping,
            d,
            sse: res.sse,
        }
    }

    /// Reassembles a [`DenseVq`] from stored parts (the decode path of the
    /// artifact codec).
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the parts disagree in
    /// shape: the codebook's `d` must match `d`, and the assignment count
    /// times `d` must cover the original tensor exactly.
    pub fn from_parts(
        codebook: Codebook,
        assignments: Assignments,
        orig_dims: Vec<usize>,
        grouping: GroupingStrategy,
        d: usize,
        sse: f32,
    ) -> Result<DenseVq, MvqError> {
        if codebook.d() != d {
            return Err(MvqError::InvalidConfig(format!(
                "codebook d = {} disagrees with grouping d = {d}",
                codebook.d()
            )));
        }
        let numel: usize = orig_dims.iter().product();
        if assignments.len() * d != numel {
            return Err(MvqError::InvalidConfig(format!(
                "{} assignments of d = {d} do not cover a tensor of dims {orig_dims:?}",
                assignments.len()
            )));
        }
        Ok(DenseVq { codebook, assignments, orig_dims, grouping, d, sse })
    }

    /// The codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// The assignments.
    pub fn assignments(&self) -> &Assignments {
        &self.assignments
    }

    /// Original weight dims.
    pub fn orig_dims(&self) -> &[usize] {
        &self.orig_dims
    }

    /// Subvector length used for grouping.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Grouping strategy used.
    pub fn grouping(&self) -> GroupingStrategy {
        self.grouping
    }

    /// Reconstructs the dense weight in original dims (every lane comes
    /// from the codeword; nothing is masked).
    ///
    /// # Errors
    ///
    /// Propagates grouping errors.
    pub fn reconstruct(&self) -> Result<Tensor, MvqError> {
        let ng = self.assignments.len();
        let mut grouped = Tensor::zeros(vec![ng, self.d]);
        for j in 0..ng {
            grouped.row_mut(j).copy_from_slice(self.codebook.codeword(self.assignments.of(j)));
        }
        self.grouping.ungroup(&grouped, &self.orig_dims, self.d)
    }

    /// Storage breakdown (no mask bits).
    pub fn storage(&self) -> StorageBreakdown {
        vq_compression_ratio(self.assignments.len(), &self.codebook)
    }
}

/// Case A: dense weights, common k-means, dense reconstruction — the
/// simplest VQ procedure.
///
/// # Errors
///
/// Propagates grouping/clustering errors.
pub fn vq_case_a<R: Rng>(
    weight: &Tensor,
    k: usize,
    d: usize,
    grouping: GroupingStrategy,
    codebook_bits: Option<u32>,
    kernel: KernelStrategy,
    rng: &mut R,
) -> Result<DenseVq, MvqError> {
    let grouped = grouping.group(weight, d)?;
    let mut res = kmeans(&grouped, &KmeansConfig::new(k).with_kernel(kernel), None, rng)?;
    if let Some(b) = codebook_bits {
        res.codebook.quantize(b)?;
    }
    Ok(DenseVq {
        codebook: res.codebook,
        assignments: res.assignments,
        orig_dims: weight.dims().to_vec(),
        grouping,
        d,
        sse: res.sse,
    })
}

/// Case B: N:M-pruned weights, common k-means, dense reconstruction — the
/// mask is *not* stored, so reconstruction does not re-zero pruned lanes
/// and FLOPs are not reduced.
///
/// # Errors
///
/// Propagates grouping/pruning/clustering errors.
#[allow(clippy::too_many_arguments)]
pub fn vq_case_b<R: Rng>(
    weight: &Tensor,
    k: usize,
    d: usize,
    keep_n: usize,
    m: usize,
    grouping: GroupingStrategy,
    codebook_bits: Option<u32>,
    kernel: KernelStrategy,
    rng: &mut R,
) -> Result<DenseVq, MvqError> {
    let grouped = grouping.group(weight, d)?;
    let (pruned, _mask) = prune_matrix_nm(&grouped, keep_n, m)?;
    let mut res = kmeans(&pruned, &KmeansConfig::new(k).with_kernel(kernel), None, rng)?;
    if let Some(b) = codebook_bits {
        res.codebook.quantize(b)?;
    }
    Ok(DenseVq {
        codebook: res.codebook,
        assignments: res.assignments,
        orig_dims: weight.dims().to_vec(),
        grouping,
        d,
        sse: res.sse,
    })
}

/// Case C: N:M-pruned weights, *common* k-means, sparse reconstruction —
/// the mask is stored and applied at decode, but clustering ignored it, so
/// codewords are dragged toward the structural zeros.
///
/// # Errors
///
/// Propagates grouping/pruning/clustering errors.
#[allow(clippy::too_many_arguments)]
pub fn vq_case_c<R: Rng>(
    weight: &Tensor,
    k: usize,
    d: usize,
    keep_n: usize,
    m: usize,
    grouping: GroupingStrategy,
    codebook_bits: Option<u32>,
    kernel: KernelStrategy,
    rng: &mut R,
) -> Result<(CompressedMatrix, NmMask), MvqError> {
    let grouped = grouping.group(weight, d)?;
    let (pruned, mask) = prune_matrix_nm(&grouped, keep_n, m)?;
    let mut res = kmeans(&pruned, &KmeansConfig::new(k).with_kernel(kernel), None, rng)?;
    if let Some(b) = codebook_bits {
        res.codebook.quantize(b)?;
    }
    let cm = CompressedMatrix::from_parts(
        res.codebook,
        res.assignments,
        mask.clone(),
        weight.dims().to_vec(),
        grouping,
    )?
    .with_sse(res.sse);
    Ok((cm, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masked_kmeans::masked_sse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        mvq_tensor::kaiming_normal(vec![32, 8, 3, 3], 72, &mut rng)
    }

    #[test]
    fn case_a_reconstruction_is_dense() {
        let w = weight(0);
        let mut rng = StdRng::seed_from_u64(1);
        let vq = vq_case_a(
            &w,
            16,
            8,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let r = vq.reconstruct().unwrap();
        assert_eq!(r.dims(), w.dims());
        assert!(r.sparsity() < 0.2, "dense reconstruction, sparsity {}", r.sparsity());
        assert_eq!(vq.storage().mask_bits, 0);
    }

    #[test]
    fn case_b_clusters_sparse_but_reconstructs_dense() {
        let w = weight(2);
        let mut rng = StdRng::seed_from_u64(3);
        let vq = vq_case_b(
            &w,
            16,
            8,
            2,
            8,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let r = vq.reconstruct().unwrap();
        // codewords carry many near-zero lanes but reconstruction is not
        // exactly sparse
        assert_eq!(r.dims(), w.dims());
        assert_eq!(vq.storage().mask_bits, 0);
    }

    #[test]
    fn case_c_reconstruction_is_sparse() {
        let w = weight(4);
        let mut rng = StdRng::seed_from_u64(5);
        let (cm, mask) = vq_case_c(
            &w,
            16,
            8,
            2,
            8,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let r = cm.reconstruct().unwrap();
        assert!((r.sparsity() - 0.75).abs() < 0.05, "sparsity {}", r.sparsity());
        assert_eq!(mask.sparsity(), 0.75);
        assert!(cm.storage().mask_bits > 0);
    }

    #[test]
    fn masked_kmeans_beats_case_c_on_masked_sse() {
        // The paper's Table 3 headline: (D) masked k-means reaches much
        // lower masked SSE than (C) common k-means on sparse weights.
        let w = weight(6);
        let grouping = GroupingStrategy::OutputChannelWise;
        let (cm_c, mask) = vq_case_c(
            &w,
            16,
            16,
            4,
            16,
            grouping,
            None,
            KernelStrategy::default(),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let grouped = grouping.group(&w, 16).unwrap();
        let (pruned, _) = crate::pruning::prune_matrix_nm(&grouped, 4, 16).unwrap();
        let sse_c = masked_sse(&pruned, &mask, cm_c.codebook(), cm_c.assignments()).unwrap();
        let d_res = crate::masked_kmeans::masked_kmeans(
            &pruned,
            &mask,
            &KmeansConfig::new(16),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert!(
            d_res.sse < sse_c * 0.9,
            "masked {} should be well below case C {sse_c}",
            d_res.sse
        );
    }
}
