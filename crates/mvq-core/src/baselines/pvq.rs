//! PvQ baseline: uniform scalar quantization at a given bit width
//! (the "pruning vs quantization" comparison point, Kuzmin et al. 2023).
//! The paper's Tables 4/6 compare MVQ against 2-bit PvQ on MobileNets,
//! EfficientNet and DeepLab.

use mvq_nn::layers::Sequential;
use mvq_tensor::{quantize_symmetric, Tensor};
use rand::SeedableRng;

use crate::error::MvqError;

/// Result of scalar-quantizing a tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PvqResult {
    /// The fake-quantized tensor (values snapped to the grid).
    pub quantized: Tensor,
    /// Learned scale.
    pub scale: f32,
    /// Bit width.
    pub bits: u32,
    /// Quantization SSE against the input.
    pub sse: f32,
}

impl PvqResult {
    /// Compression ratio versus fp32 storage (per-tensor scale amortized
    /// away, matching how uniform-quantization papers report it).
    pub fn compression_ratio(&self) -> f64 {
        32.0 / self.bits as f64
    }
}

/// Uniformly quantizes `weight` to `bits` with an alternating-minimization
/// learned scale (same scale solver as the MVQ codebook quantizer).
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for bits outside `2..=16` or
/// all-zero input.
pub fn pvq_quantize(weight: &Tensor, bits: u32) -> Result<PvqResult, MvqError> {
    if !(2..=16).contains(&bits) {
        return Err(MvqError::InvalidConfig(format!("bits must be in 2..=16, got {bits}")));
    }
    let qmax = ((1i64 << (bits - 1)) - 1) as f32;
    let mean_abs =
        weight.data().iter().map(|x| x.abs()).sum::<f32>() / weight.numel().max(1) as f32;
    if mean_abs == 0.0 {
        return Err(MvqError::InvalidConfig("cannot quantize an all-zero tensor".into()));
    }
    let mut s = 2.0 * mean_abs / qmax.sqrt();
    for _ in 0..30 {
        let q = quantize_symmetric(weight, s, bits)?;
        let num: f64 =
            weight.data().iter().zip(q.values()).map(|(&c, &qi)| c as f64 * qi as f64).sum();
        let den: f64 = q.values().iter().map(|&qi| (qi as f64) * (qi as f64)).sum();
        if den == 0.0 {
            break;
        }
        let s_new = (num / den) as f32;
        if !(s_new.is_finite() && s_new > 0.0) || (s_new - s).abs() / s < 1e-6 {
            break;
        }
        s = s_new;
    }
    let quantized = quantize_symmetric(weight, s, bits)?.dequantize();
    let sse = weight.sse(&quantized)?;
    Ok(PvqResult { quantized, scale: s, bits, sse })
}

/// Applies PvQ to every conv layer of a model (depthwise included —
/// scalar quantization has no shape constraints), writes the quantized
/// weights back, and returns the per-layer artifacts with the same
/// `storage()` / `compression_ratio()` / `reconstructions()` surface as
/// every other model-level compression path.
///
/// # Errors
///
/// Propagates per-layer quantization errors.
pub fn pvq_compress_model(
    model: &mut Sequential,
    bits: u32,
) -> Result<crate::pipeline::ModelArtifacts, MvqError> {
    use crate::pipeline::Compressor;
    // scalar quantization is deterministic; the RNG is unused
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    crate::pipeline::Pvq { bits }.compress_model(model, &mut rng)
}

/// Historical in-place mutation API; returns only the summed SSE.
///
/// # Errors
///
/// Propagates per-layer quantization errors.
#[deprecated(note = "use `pvq_compress_model`, which returns artifacts like \
                     the other model-level paths")]
pub fn pvq_quantize_model(model: &mut Sequential, bits: u32) -> Result<f32, MvqError> {
    let artifacts = pvq_compress_model(model, bits)?;
    Ok(artifacts.total_sse().expect("scalar artifacts always record SSE") as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eight_bit_is_nearly_lossless() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![64, 64], 64, &mut rng);
        let res = pvq_quantize(&w, 8).unwrap();
        assert!(res.sse / w.sq_norm() < 1e-2, "relative sse {}", res.sse / w.sq_norm());
        assert_eq!(res.compression_ratio(), 4.0);
    }

    #[test]
    fn two_bit_is_lossy_but_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = mvq_tensor::kaiming_normal(vec![64, 64], 64, &mut rng);
        let r8 = pvq_quantize(&w, 8).unwrap();
        let r2 = pvq_quantize(&w, 2).unwrap();
        assert!(r2.sse > r8.sse * 10.0);
        assert_eq!(r2.compression_ratio(), 16.0);
        // grid has at most 4 distinct values
        let mut vals: Vec<i64> =
            r2.quantized.data().iter().map(|&v| (v / r2.scale).round() as i64).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 4, "levels: {vals:?}");
    }

    #[test]
    fn model_quantization_applies_to_all_convs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = mvq_nn::models::tiny_cnn(3, 8, &mut rng);
        let artifacts = pvq_compress_model(&mut model, 2).unwrap();
        assert!(artifacts.total_sse().unwrap() > 0.0);
        assert_eq!(artifacts.layers.len(), model.num_convs());
        assert!(artifacts.skipped.is_empty());
        assert!((artifacts.compression_ratio() - 16.0).abs() < 1e-9);
        // all weights now on a 4-level grid per layer
        model.visit_convs_mut(&mut |conv| {
            let mut vals: Vec<u32> =
                conv.weight.value.data().iter().map(|&v| v.to_bits()).collect();
            vals.sort_unstable();
            vals.dedup();
            assert!(vals.len() <= 4, "{} distinct values", vals.len());
        });
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_reports_summed_sse() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = mvq_nn::models::tiny_cnn(3, 8, &mut rng);
        let mut reference = mvq_nn::models::tiny_cnn(3, 8, &mut StdRng::seed_from_u64(3));
        let sse = pvq_quantize_model(&mut model, 2).unwrap();
        let artifacts = pvq_compress_model(&mut reference, 2).unwrap();
        assert!((sse as f64 - artifacts.total_sse().unwrap()).abs() < 1e-3);
    }

    #[test]
    fn validates_input() {
        assert!(pvq_quantize(&Tensor::zeros(vec![4]), 2).is_err());
        let t = Tensor::ones(vec![4]);
        assert!(pvq_quantize(&t, 1).is_err());
        assert!(pvq_quantize(&t, 32).is_err());
    }
}
