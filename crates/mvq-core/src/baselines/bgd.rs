//! BGD-style baseline ("And the bit goes down", Stock et al., ICLR '20).
//!
//! BGD minimizes the *activation-weighted* reconstruction error
//! `‖(W − Ŵ)x‖²` rather than the plain weight error, clustering with
//! importance derived from input activations. This implementation keeps
//! that mechanism: k-means whose centroid updates weight each subvector by
//! an importance score — the caller provides per-input-position activation
//! second moments (or `None`, in which case the squared subvector norm is
//! used as the importance proxy).

use mvq_tensor::Tensor;
use rand::Rng;

use crate::baselines::vq_plain::DenseVq;
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::kernels::KernelStrategy;
use crate::kmeans::{kmeans, KmeansConfig};

/// Compresses `weight` with activation-weighted k-means.
///
/// `activation_moments`, when given, must hold one non-negative weight per
/// subvector (e.g. the mean squared activation flowing through that
/// subvector's input positions).
///
/// # Errors
///
/// Propagates grouping/clustering errors and rejects negative importance.
#[allow(clippy::too_many_arguments)]
pub fn bgd_compress<R: Rng>(
    weight: &Tensor,
    k: usize,
    d: usize,
    grouping: GroupingStrategy,
    codebook_bits: Option<u32>,
    activation_moments: Option<&[f32]>,
    kernel: KernelStrategy,
    rng: &mut R,
) -> Result<DenseVq, MvqError> {
    let grouped = grouping.group(weight, d)?;
    let ng = grouped.dims()[0];
    let importance: Vec<f32> = match activation_moments {
        Some(m) => {
            if m.len() != ng {
                return Err(MvqError::InvalidConfig(format!(
                    "{} activation moments for {ng} subvectors",
                    m.len()
                )));
            }
            if m.iter().any(|&x| x < 0.0) {
                return Err(MvqError::InvalidConfig("importance must be non-negative".into()));
            }
            m.to_vec()
        }
        None => {
            (0..ng).map(|j| grouped.row(j).iter().map(|&v| v * v).sum::<f32>().max(1e-8)).collect()
        }
    };
    let mut res =
        kmeans(&grouped, &KmeansConfig::new(k).with_kernel(kernel), Some(&importance), rng)?;
    if let Some(b) = codebook_bits {
        res.codebook.quantize(b)?;
    }
    Ok(DenseVq::from_clustering(res, weight.dims().to_vec(), grouping, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_importance_compresses() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
        let vq = bgd_compress(
            &w,
            8,
            16,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            None,
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let r = vq.reconstruct().unwrap();
        assert_eq!(r.dims(), w.dims());
        assert!(vq.sse.is_finite());
    }

    #[test]
    fn importance_shifts_centroids_toward_heavy_rows() {
        // two distinct clusters of rows; give one cluster huge importance
        // and force k=1: the centroid should land near the heavy cluster
        let mut data = Vec::new();
        for _ in 0..10 {
            data.extend_from_slice(&[0.0, 0.0]);
        }
        for _ in 0..10 {
            data.extend_from_slice(&[1.0, 1.0]);
        }
        let w = Tensor::from_vec(vec![20, 2], data).unwrap();
        let mut imp = vec![1.0f32; 20];
        for x in imp.iter_mut().skip(10) {
            *x = 1000.0;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let vq = bgd_compress(
            &w,
            1,
            2,
            GroupingStrategy::OutputChannelWise,
            None,
            Some(&imp),
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let c = vq.codebook().codeword(0);
        assert!(c[0] > 0.9, "weighted centroid {c:?}");
    }

    #[test]
    fn validates_importance() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = mvq_tensor::kaiming_normal(vec![8, 4], 4, &mut rng);
        let g = GroupingStrategy::OutputChannelWise;
        assert!(bgd_compress(&w, 2, 4, g, None, Some(&[1.0]), KernelStrategy::default(), &mut rng)
            .is_err());
        assert!(bgd_compress(
            &w,
            2,
            4,
            g,
            None,
            Some(&[-1.0; 8]),
            KernelStrategy::default(),
            &mut rng
        )
        .is_err());
    }
}
