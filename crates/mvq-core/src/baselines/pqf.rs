//! PQF-style "permute, quantize" baseline (Martinez et al., CVPR '21).
//!
//! PQF's key idea: the grouping of scalars into subvectors is a free
//! parameter — searching over permutations of the (functionally
//! equivalent) weight orderings yields subvector sets with lower
//! within-cluster scatter, which k-means then quantizes with less error.
//! The permutation is absorbed into the network wiring, so it costs no
//! storage.
//!
//! This implementation performs the same search with a random-restart
//! hill-climb: candidate swaps of two scalar positions across subvectors
//! are accepted when they reduce the total within-subvector scatter
//! `Σ_j Σ_t (w_jt − mean_j)²` — PQF's determinant criterion collapsed to
//! its diagonal, which preserves the search's behaviour at a fraction of
//! the cost.

use mvq_tensor::Tensor;
use rand::Rng;

use crate::baselines::vq_plain::DenseVq;
use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::kernels::KernelStrategy;
use crate::kmeans::{kmeans, KmeansConfig};
use crate::metrics::{vq_compression_ratio, StorageBreakdown};

/// A PQF-compressed weight: permutation + codebook + assignments.
#[derive(Debug, Clone)]
pub struct PqfCompressed {
    permutation: Vec<usize>,
    codebook: Codebook,
    assignments: Assignments,
    orig_dims: Vec<usize>,
    grouping: GroupingStrategy,
    d: usize,
    /// k-means SSE in the permuted space.
    pub sse: f32,
}

impl PqfCompressed {
    /// Reassembles a [`PqfCompressed`] from stored parts (the decode path
    /// of the artifact codec).
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the parts disagree in
    /// shape or `permutation` is not a bijection over the grouped
    /// positions.
    pub fn from_parts(
        permutation: Vec<usize>,
        codebook: Codebook,
        assignments: Assignments,
        orig_dims: Vec<usize>,
        grouping: GroupingStrategy,
        d: usize,
        sse: f32,
    ) -> Result<PqfCompressed, MvqError> {
        if codebook.d() != d {
            return Err(MvqError::InvalidConfig(format!(
                "codebook d = {} disagrees with grouping d = {d}",
                codebook.d()
            )));
        }
        let total = assignments.len() * d;
        let numel: usize = orig_dims.iter().product();
        if total != numel {
            return Err(MvqError::InvalidConfig(format!(
                "{} assignments of d = {d} do not cover a tensor of dims {orig_dims:?}",
                assignments.len()
            )));
        }
        if permutation.len() != total {
            return Err(MvqError::InvalidConfig(format!(
                "permutation length {} != grouped positions {total}",
                permutation.len()
            )));
        }
        let mut seen = vec![false; total];
        for &p in &permutation {
            if p >= total || seen[p] {
                return Err(MvqError::InvalidConfig(format!(
                    "permutation is not a bijection over 0..{total}"
                )));
            }
            seen[p] = true;
        }
        Ok(PqfCompressed { permutation, codebook, assignments, orig_dims, grouping, d, sse })
    }

    /// The learned permutation over flattened grouped positions.
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// Subvector length used for grouping.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Grouping strategy used.
    pub fn grouping(&self) -> GroupingStrategy {
        self.grouping
    }

    /// The codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// The assignments.
    pub fn assignments(&self) -> &Assignments {
        &self.assignments
    }

    /// Original weight dims.
    pub fn orig_dims(&self) -> &[usize] {
        &self.orig_dims
    }

    /// Reconstructs the dense weight (decode, then inverse-permute).
    ///
    /// # Errors
    ///
    /// Propagates grouping errors.
    pub fn reconstruct(&self) -> Result<Tensor, MvqError> {
        let ng = self.assignments.len();
        let mut decoded = vec![0.0f32; ng * self.d];
        for j in 0..ng {
            let c = self.codebook.codeword(self.assignments.of(j));
            decoded[j * self.d..(j + 1) * self.d].copy_from_slice(c);
        }
        // invert the permutation: permuted[p] = original[perm[p]]
        let mut original = vec![0.0f32; ng * self.d];
        for (p, &src) in self.permutation.iter().enumerate() {
            original[src] = decoded[p];
        }
        let grouped = Tensor::from_vec(vec![ng, self.d], original)?;
        self.grouping.ungroup(&grouped, &self.orig_dims, self.d)
    }

    /// Storage breakdown; the permutation is free (absorbed into wiring),
    /// matching PQF's accounting.
    pub fn storage(&self) -> StorageBreakdown {
        vq_compression_ratio(self.assignments.len(), &self.codebook)
    }
}

/// Compresses `weight` with the PQF recipe: permutation search, then
/// k-means, then (optional) int8 codebook.
///
/// `swap_trials` bounds the hill-climb (PQF uses a comparable
/// iteration-bounded local search).
///
/// # Errors
///
/// Propagates grouping/clustering errors.
#[allow(clippy::too_many_arguments)]
pub fn pqf_compress<R: Rng>(
    weight: &Tensor,
    k: usize,
    d: usize,
    grouping: GroupingStrategy,
    codebook_bits: Option<u32>,
    swap_trials: usize,
    kernel: KernelStrategy,
    rng: &mut R,
) -> Result<PqfCompressed, MvqError> {
    let grouped = grouping.group(weight, d)?;
    let ng = grouped.dims()[0];
    let flat = grouped.data();
    let total = ng * d;
    // search for a permutation lowering within-subvector scatter
    let mut perm: Vec<usize> = (0..total).collect();
    let mut values: Vec<f32> = flat.to_vec();
    let mut row_sum: Vec<f32> = (0..ng).map(|j| values[j * d..(j + 1) * d].iter().sum()).collect();
    let mut row_sq: Vec<f32> =
        (0..ng).map(|j| values[j * d..(j + 1) * d].iter().map(|&v| v * v).sum()).collect();
    let scatter = |sum: f32, sq: f32| sq - sum * sum / d as f32;
    for _ in 0..swap_trials {
        let a = rng.gen_range(0..total);
        let b = rng.gen_range(0..total);
        let (ja, jb) = (a / d, b / d);
        if ja == jb {
            continue;
        }
        let (va, vb) = (values[a], values[b]);
        let before = scatter(row_sum[ja], row_sq[ja]) + scatter(row_sum[jb], row_sq[jb]);
        let sum_a = row_sum[ja] - va + vb;
        let sq_a = row_sq[ja] - va * va + vb * vb;
        let sum_b = row_sum[jb] - vb + va;
        let sq_b = row_sq[jb] - vb * vb + va * va;
        let after = scatter(sum_a, sq_a) + scatter(sum_b, sq_b);
        if after < before {
            values.swap(a, b);
            perm.swap(a, b);
            row_sum[ja] = sum_a;
            row_sq[ja] = sq_a;
            row_sum[jb] = sum_b;
            row_sq[jb] = sq_b;
        }
    }
    let permuted = Tensor::from_vec(vec![ng, d], values)?;
    let mut res = kmeans(&permuted, &KmeansConfig::new(k).with_kernel(kernel), None, rng)?;
    if let Some(b) = codebook_bits {
        res.codebook.quantize(b)?;
    }
    Ok(PqfCompressed {
        permutation: perm,
        codebook: res.codebook,
        assignments: res.assignments,
        orig_dims: weight.dims().to_vec(),
        grouping,
        d,
        sse: res.sse,
    })
}

/// Convenience: PQF with zero swap trials degrades to plain VQ (case A);
/// used in tests to isolate the permutation's benefit.
pub fn pqf_no_permutation<R: Rng>(
    weight: &Tensor,
    k: usize,
    d: usize,
    grouping: GroupingStrategy,
    rng: &mut R,
) -> Result<DenseVq, MvqError> {
    crate::baselines::vq_plain::vq_case_a(
        weight,
        k,
        d,
        grouping,
        None,
        KernelStrategy::default(),
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    #[test]
    fn permutation_is_a_bijection() {
        let w = weight(0);
        let mut rng = StdRng::seed_from_u64(1);
        let pqf = pqf_compress(
            &w,
            8,
            16,
            GroupingStrategy::OutputChannelWise,
            None,
            2_000,
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let mut seen = vec![false; pqf.permutation().len()];
        for &p in pqf.permutation() {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reconstruct_round_trips_shape() {
        let w = weight(2);
        let mut rng = StdRng::seed_from_u64(3);
        let pqf = pqf_compress(
            &w,
            8,
            16,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            1_000,
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let r = pqf.reconstruct().unwrap();
        assert_eq!(r.dims(), w.dims());
    }

    #[test]
    fn permutation_search_lowers_sse() {
        // With structured data (each subvector mixes a large and a small
        // scale), regrouping by magnitude should cut clustering error.
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..64 {
            for t in 0..8 {
                let scale = if t % 2 == 0 { 1.0 } else { 0.01 };
                data.push(scale * (rng.gen_range(-1.0..1.0f32)));
            }
        }
        let w = Tensor::from_vec(vec![64, 8], data).unwrap();
        let base = pqf_compress(
            &w,
            4,
            8,
            GroupingStrategy::OutputChannelWise,
            None,
            0,
            KernelStrategy::default(),
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        let searched = pqf_compress(
            &w,
            4,
            8,
            GroupingStrategy::OutputChannelWise,
            None,
            20_000,
            KernelStrategy::default(),
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        assert!(searched.sse < base.sse, "searched {} !< unpermuted {}", searched.sse, base.sse);
    }

    #[test]
    fn exact_reconstruction_when_k_equals_ng() {
        // with k = NG and no quantization, decoding + inverse permutation
        // must reproduce the weights exactly
        let w = weight(6);
        let mut rng = StdRng::seed_from_u64(7);
        let pqf = pqf_compress(
            &w,
            32,
            16,
            GroupingStrategy::OutputChannelWise,
            None,
            5_000,
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        let r = pqf.reconstruct().unwrap();
        let err = w.sse(&r).unwrap();
        assert!(err < 1e-6, "reconstruction error {err}");
    }

    #[test]
    fn storage_has_no_mask_or_permutation_cost() {
        let w = weight(8);
        let mut rng = StdRng::seed_from_u64(9);
        let pqf = pqf_compress(
            &w,
            8,
            16,
            GroupingStrategy::OutputChannelWise,
            Some(8),
            100,
            KernelStrategy::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(pqf.storage().mask_bits, 0);
    }
}
