//! The codebook (set of codewords) and the assignment list — two of the
//! three components of MVQ's compressed representation (the third is the
//! mask, [`crate::NmMask`]).

use mvq_tensor::{quantize_symmetric, Tensor};

use crate::error::MvqError;

/// A codebook of `k` codewords of length `d`, optionally quantized to a
/// symmetric integer grid (paper §4.5, Eq. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    centers: Tensor, // [k, d]
    scale: Option<f32>,
    bits: Option<u32>,
}

impl Codebook {
    /// Wraps a `[k, d]` centers matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] unless `centers` is a non-empty
    /// matrix.
    pub fn new(centers: Tensor) -> Result<Codebook, MvqError> {
        if centers.rank() != 2 || centers.numel() == 0 {
            return Err(MvqError::InvalidConfig(format!(
                "codebook must be a non-empty [k, d] matrix, got {:?}",
                centers.dims()
            )));
        }
        Ok(Codebook { centers, scale: None, bits: None })
    }

    /// Reassembles a codebook from stored parts, including the
    /// quantization metadata [`Codebook::quantize`] recorded — the decode
    /// path of the artifact codec, which must reproduce the original bit
    /// pattern without re-running the scale solver.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] for a malformed centers matrix,
    /// a scale/bits pair where only one side is present, a non-positive or
    /// non-finite scale, or bits outside `2..=16`.
    pub fn from_raw_parts(
        centers: Tensor,
        scale: Option<f32>,
        bits: Option<u32>,
    ) -> Result<Codebook, MvqError> {
        let mut cb = Codebook::new(centers)?;
        match (scale, bits) {
            (None, None) => {}
            (Some(s), Some(b)) => {
                if !(2..=16).contains(&b) {
                    return Err(MvqError::InvalidConfig(format!(
                        "codebook bits must be in 2..=16, got {b}"
                    )));
                }
                if !(s.is_finite() && s > 0.0) {
                    return Err(MvqError::InvalidConfig(format!(
                        "codebook scale must be finite and positive, got {s}"
                    )));
                }
                cb.scale = Some(s);
                cb.bits = Some(b);
            }
            _ => {
                return Err(MvqError::InvalidConfig(
                    "codebook quantization scale and bits must be stored together".into(),
                ))
            }
        }
        Ok(cb)
    }

    /// Number of codewords `k`.
    pub fn k(&self) -> usize {
        self.centers.dims()[0]
    }

    /// Codeword length `d`.
    pub fn d(&self) -> usize {
        self.centers.dims()[1]
    }

    /// The `[k, d]` centers matrix.
    pub fn centers(&self) -> &Tensor {
        &self.centers
    }

    /// Mutable centers (used by fine-tuning). Quantization metadata is
    /// preserved; call [`Codebook::requantize`] after editing if the
    /// codebook was quantized.
    pub fn centers_mut(&mut self) -> &mut Tensor {
        &mut self.centers
    }

    /// Codeword `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= k`; assignments are validated upstream.
    pub fn codeword(&self, i: usize) -> &[f32] {
        self.centers.row(i)
    }

    /// Quantization scale, if quantized.
    pub fn scale(&self) -> Option<f32> {
        self.scale
    }

    /// Quantization bit width, if quantized.
    pub fn bits(&self) -> Option<u32> {
        self.bits
    }

    /// Bits needed to store one assignment index: `⌈log2 k⌉`.
    pub fn index_bits(&self) -> u32 {
        let k = self.k() as u64;
        if k <= 1 {
            0
        } else {
            64 - (k - 1).leading_zeros()
        }
    }

    /// Total codebook storage in bits (`b_c` of Eq. 7): `k × d × q_c`,
    /// where `q_c` is the quantized width or 32 for float codebooks.
    pub fn storage_bits(&self) -> u64 {
        let qc = self.bits.unwrap_or(32) as u64;
        (self.k() * self.d()) as u64 * qc
    }

    /// Quantizes the codebook to `bits` with an LSQ-style learned scale:
    /// the scale starts from the LSQ initialization `2·E|c| / √q_max` and
    /// is refined by alternating minimization (fix the integer codes, solve
    /// the optimal scale in closed form, repeat), which reaches the same
    /// fixed point LSQ's gradient descent on `s` does for this convex
    /// subproblem.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when `bits` is outside `2..=16`
    /// or the codebook is all-zero.
    pub fn quantize(&mut self, bits: u32) -> Result<(), MvqError> {
        if !(2..=16).contains(&bits) {
            return Err(MvqError::InvalidConfig(format!("bits must be in 2..=16, got {bits}")));
        }
        let qmax = ((1i64 << (bits - 1)) - 1) as f32;
        let mean_abs =
            self.centers.data().iter().map(|x| x.abs()).sum::<f32>() / self.centers.numel() as f32;
        if mean_abs == 0.0 {
            return Err(MvqError::InvalidConfig("cannot quantize an all-zero codebook".into()));
        }
        let mut s = 2.0 * mean_abs / qmax.sqrt();
        for _ in 0..30 {
            // fix codes q = clamp(round(c/s)), then optimal s = <c,q>/<q,q>
            let q = quantize_symmetric(&self.centers, s, bits)?;
            let num: f64 = self
                .centers
                .data()
                .iter()
                .zip(q.values())
                .map(|(&c, &qi)| c as f64 * qi as f64)
                .sum();
            let den: f64 = q.values().iter().map(|&qi| (qi as f64) * (qi as f64)).sum();
            if den == 0.0 {
                break;
            }
            let s_new = (num / den) as f32;
            if !(s_new.is_finite() && s_new > 0.0) || (s_new - s).abs() / s < 1e-6 {
                break;
            }
            s = s_new;
        }
        self.centers = quantize_symmetric(&self.centers, s, bits)?.dequantize();
        self.scale = Some(s);
        self.bits = Some(bits);
        Ok(())
    }

    /// Re-snaps the centers to the quantization grid after fine-tuning
    /// edits. No-op for unquantized codebooks.
    ///
    /// # Errors
    ///
    /// Propagates quantization errors.
    pub fn requantize(&mut self) -> Result<(), MvqError> {
        if let (Some(s), Some(b)) = (self.scale, self.bits) {
            self.centers = quantize_symmetric(&self.centers, s, b)?.dequantize();
        }
        Ok(())
    }
}

/// A per-subvector assignment list mapping each subvector to its codeword.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignments(Vec<u32>);

impl Assignments {
    /// Wraps raw indices, validating against a codebook size.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when any index is `>= k`.
    pub fn new(indices: Vec<u32>, k: usize) -> Result<Assignments, MvqError> {
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= k) {
            return Err(MvqError::InvalidConfig(format!(
                "assignment {bad} out of range for k = {k}"
            )));
        }
        Ok(Assignments(indices))
    }

    /// Number of subvectors.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw indices.
    pub fn indices(&self) -> &[u32] {
        &self.0
    }

    /// Assignment of subvector `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn of(&self, j: usize) -> usize {
        self.0[j] as usize
    }
}

impl FromIterator<u32> for Assignments {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Assignments(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cb(data: Vec<f32>, k: usize, d: usize) -> Codebook {
        Codebook::new(Tensor::from_vec(vec![k, d], data).unwrap()).unwrap()
    }

    #[test]
    fn accessors() {
        let c = cb(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(c.k(), 2);
        assert_eq!(c.d(), 2);
        assert_eq!(c.codeword(1), &[3.0, 4.0]);
        assert_eq!(c.index_bits(), 1);
        assert_eq!(c.storage_bits(), 2 * 2 * 32);
        assert!(c.scale().is_none());
    }

    #[test]
    fn index_bits_are_ceil_log2() {
        let mk = |k: usize| cb(vec![0.5; k * 2], k, 2).index_bits();
        assert_eq!(mk(1), 0);
        assert_eq!(mk(2), 1);
        assert_eq!(mk(3), 2);
        assert_eq!(mk(512), 9);
        assert_eq!(mk(513), 10);
    }

    #[test]
    fn validates_shape() {
        assert!(Codebook::new(Tensor::zeros(vec![4])).is_err());
        assert!(Codebook::new(Tensor::zeros(vec![0, 4])).is_err());
    }

    #[test]
    fn quantize_reduces_storage_and_bounds_error() {
        let mut c = cb(vec![0.11, -0.52, 0.93, 0.24, -0.75, 0.36, 0.87, -0.18], 2, 4);
        let orig = c.centers().clone();
        c.quantize(8).unwrap();
        assert_eq!(c.bits(), Some(8));
        assert_eq!(c.storage_bits(), 2 * 4 * 8);
        let s = c.scale().unwrap();
        // max error bounded by half a step
        for (a, b) in orig.data().iter().zip(c.centers().data()) {
            assert!((a - b).abs() <= s * 0.5 + 1e-6);
        }
    }

    #[test]
    fn quantize_validates() {
        let mut c = cb(vec![0.0; 4], 2, 2);
        assert!(c.quantize(8).is_err(), "all-zero codebook");
        let mut c = cb(vec![1.0; 4], 2, 2);
        assert!(c.quantize(1).is_err());
        assert!(c.quantize(20).is_err());
    }

    #[test]
    fn requantize_snaps_to_grid() {
        let mut c = cb(vec![0.5, -0.25, 1.0, 0.75], 2, 2);
        c.quantize(8).unwrap();
        let s = c.scale().unwrap();
        // nudge off-grid then requantize
        c.centers_mut().data_mut()[0] += s * 0.3;
        c.requantize().unwrap();
        for &v in c.centers().data() {
            let steps = v / s;
            assert!((steps - steps.round()).abs() < 1e-4, "{v} not on grid {s}");
        }
    }

    #[test]
    fn assignments_validate_range() {
        assert!(Assignments::new(vec![0, 1, 2], 3).is_ok());
        assert!(Assignments::new(vec![0, 3], 3).is_err());
        let a: Assignments = vec![1u32, 0].into_iter().collect();
        assert_eq!(a.len(), 2);
        assert_eq!(a.of(0), 1);
        assert!(!a.is_empty());
    }
}
