//! Weight grouping strategies (paper Fig. 3).
//!
//! A 4-D conv weight `[K, C, R, S]` (output channels, input channels,
//! kernel height, kernel width) is reshaped into a 2-D matrix of subvectors
//! of length `d` along one of three axes:
//!
//! * **kernel-wise** — each subvector is one `R×S` kernel plane
//!   (`d = R*S`, `R1 = K × C` subvectors);
//! * **output-channel-wise** — each subvector spans `d` consecutive output
//!   channels at a fixed `(c, r, s)` coordinate (`K` must be a multiple of
//!   `d`); this is the strategy the paper chooses, because it matches the
//!   accelerator's output-channel parallelism;
//! * **input-channel-wise** — symmetric, spanning input channels.

use mvq_tensor::Tensor;

use crate::error::MvqError;

/// How weights are split into subvectors of length `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GroupingStrategy {
    /// One subvector per `R×S` kernel plane; requires `d == R*S`.
    KernelWise,
    /// Subvectors span `d` consecutive output channels (paper's choice).
    #[default]
    OutputChannelWise,
    /// Subvectors span `d` consecutive input channels.
    InputChannelWise,
}

impl GroupingStrategy {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            GroupingStrategy::KernelWise => "kernel-wise",
            GroupingStrategy::OutputChannelWise => "output-wise",
            GroupingStrategy::InputChannelWise => "input-wise",
        }
    }

    /// Reshapes a 4-D weight `[K, C, R, S]` into a `[NG, d]` subvector
    /// matrix. 2-D inputs `[rows, cols]` are treated as `[K=rows,
    /// C=cols, R=1, S=1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::IncompatibleShape`] when the weight cannot be
    /// split evenly with this strategy and `d`.
    pub fn group(&self, weight: &Tensor, d: usize) -> Result<Tensor, MvqError> {
        let (k, c, r, s) = as4(weight)?;
        if d == 0 {
            return Err(MvqError::InvalidConfig("d must be positive".into()));
        }
        match self {
            GroupingStrategy::KernelWise => {
                if r * s != d {
                    return Err(MvqError::IncompatibleShape {
                        dims: weight.dims().to_vec(),
                        detail: format!("kernel-wise grouping needs d == R*S ({})", r * s),
                    });
                }
                // [K, C, R, S] rows are already contiguous kernel planes.
                Ok(weight.reshape(vec![k * c, d])?)
            }
            GroupingStrategy::OutputChannelWise => {
                if k % d != 0 {
                    return Err(MvqError::IncompatibleShape {
                        dims: weight.dims().to_vec(),
                        detail: format!("output-wise grouping needs K % d == 0 (K={k}, d={d})"),
                    });
                }
                // subvector (kb, c, r, s)[t] = W[kb*d + t, c, r, s]
                let ng = (k / d) * c * r * s;
                let mut out = Tensor::zeros(vec![ng, d]);
                let crs = c * r * s;
                let src = weight.data();
                let dst = out.data_mut();
                for kb in 0..k / d {
                    for pos in 0..crs {
                        let row = kb * crs + pos;
                        for t in 0..d {
                            dst[row * d + t] = src[(kb * d + t) * crs + pos];
                        }
                    }
                }
                Ok(out)
            }
            GroupingStrategy::InputChannelWise => {
                if c % d != 0 {
                    return Err(MvqError::IncompatibleShape {
                        dims: weight.dims().to_vec(),
                        detail: format!("input-wise grouping needs C % d == 0 (C={c}, d={d})"),
                    });
                }
                let ng = k * (c / d) * r * s;
                let mut out = Tensor::zeros(vec![ng, d]);
                let rs = r * s;
                let src = weight.data();
                let dst = out.data_mut();
                for ko in 0..k {
                    for cb in 0..c / d {
                        for pos in 0..rs {
                            let row = (ko * (c / d) + cb) * rs + pos;
                            for t in 0..d {
                                dst[row * d + t] = src[(ko * c + cb * d + t) * rs + pos];
                            }
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Inverse of [`GroupingStrategy::group`]: folds a `[NG, d]` matrix
    /// back into the original weight dims.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::IncompatibleShape`] when `matrix` does not match
    /// `orig_dims` under this strategy.
    pub fn ungroup(
        &self,
        matrix: &Tensor,
        orig_dims: &[usize],
        d: usize,
    ) -> Result<Tensor, MvqError> {
        let dims4 = normalize_dims(orig_dims)?;
        let (k, c, r, s) = (dims4[0], dims4[1], dims4[2], dims4[3]);
        let expected_ng = k * c * r * s / d;
        if matrix.dims() != [expected_ng, d] {
            return Err(MvqError::IncompatibleShape {
                dims: matrix.dims().to_vec(),
                detail: format!("expected [{expected_ng}, {d}] for original dims {orig_dims:?}"),
            });
        }
        let mut out = Tensor::zeros(orig_dims.to_vec());
        let src = matrix.data();
        let dst = out.data_mut();
        match self {
            GroupingStrategy::KernelWise => {
                dst.copy_from_slice(src);
            }
            GroupingStrategy::OutputChannelWise => {
                let crs = c * r * s;
                for kb in 0..k / d {
                    for pos in 0..crs {
                        let row = kb * crs + pos;
                        for t in 0..d {
                            dst[(kb * d + t) * crs + pos] = src[row * d + t];
                        }
                    }
                }
            }
            GroupingStrategy::InputChannelWise => {
                let rs = r * s;
                for ko in 0..k {
                    for cb in 0..c / d {
                        for pos in 0..rs {
                            let row = (ko * (c / d) + cb) * rs + pos;
                            for t in 0..d {
                                dst[(ko * c + cb * d + t) * rs + pos] = src[row * d + t];
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for GroupingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn as4(t: &Tensor) -> Result<(usize, usize, usize, usize), MvqError> {
    let dims4 = normalize_dims(t.dims())?;
    Ok((dims4[0], dims4[1], dims4[2], dims4[3]))
}

fn normalize_dims(dims: &[usize]) -> Result<[usize; 4], MvqError> {
    match dims.len() {
        4 => Ok([dims[0], dims[1], dims[2], dims[3]]),
        2 => Ok([dims[0], dims[1], 1, 1]),
        _ => Err(MvqError::IncompatibleShape {
            dims: dims.to_vec(),
            detail: "grouping expects rank 2 or 4 weights".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq4(k: usize, c: usize, r: usize, s: usize) -> Tensor {
        let n = k * c * r * s;
        Tensor::from_vec(vec![k, c, r, s], (0..n).map(|x| x as f32).collect()).unwrap()
    }

    #[test]
    fn kernel_wise_rows_are_kernel_planes() {
        let w = seq4(2, 3, 2, 2);
        let g = GroupingStrategy::KernelWise.group(&w, 4).unwrap();
        assert_eq!(g.dims(), &[6, 4]);
        // first kernel plane of W[0,0] = elements 0..4
        assert_eq!(g.row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(g.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn output_wise_spans_output_channels() {
        let w = seq4(4, 2, 1, 1);
        let g = GroupingStrategy::OutputChannelWise.group(&w, 2).unwrap();
        assert_eq!(g.dims(), &[4, 2]);
        // subvector 0: W[0,0], W[1,0] = 0, 2 (crs = 2)
        assert_eq!(g.row(0), &[0.0, 2.0]);
        // subvector 1: W[0,1], W[1,1] = 1, 3
        assert_eq!(g.row(1), &[1.0, 3.0]);
        // second block of output channels
        assert_eq!(g.row(2), &[4.0, 6.0]);
    }

    #[test]
    fn input_wise_spans_input_channels() {
        let w = seq4(2, 4, 1, 1);
        let g = GroupingStrategy::InputChannelWise.group(&w, 2).unwrap();
        assert_eq!(g.dims(), &[4, 2]);
        // subvector 0: W[0,0], W[0,1] = 0, 1
        assert_eq!(g.row(0), &[0.0, 1.0]);
        assert_eq!(g.row(1), &[2.0, 3.0]);
    }

    #[test]
    fn round_trip_all_strategies() {
        let w = seq4(4, 4, 3, 3);
        for (strat, d) in [
            (GroupingStrategy::KernelWise, 9),
            (GroupingStrategy::OutputChannelWise, 4),
            (GroupingStrategy::OutputChannelWise, 2),
            (GroupingStrategy::InputChannelWise, 4),
        ] {
            let g = strat.group(&w, d).unwrap();
            let back = strat.ungroup(&g, w.dims(), d).unwrap();
            assert_eq!(back.data(), w.data(), "{strat} d={d}");
        }
    }

    #[test]
    fn round_trip_2d_weight() {
        let w = Tensor::from_vec(vec![8, 4], (0..32).map(|x| x as f32).collect()).unwrap();
        let g = GroupingStrategy::OutputChannelWise.group(&w, 4).unwrap();
        assert_eq!(g.dims(), &[8, 4]);
        let back = GroupingStrategy::OutputChannelWise.ungroup(&g, w.dims(), 4).unwrap();
        assert_eq!(back.data(), w.data());
    }

    #[test]
    fn incompatible_shapes_rejected() {
        let w = seq4(3, 3, 3, 3);
        assert!(GroupingStrategy::KernelWise.group(&w, 8).is_err());
        assert!(GroupingStrategy::OutputChannelWise.group(&w, 2).is_err());
        assert!(GroupingStrategy::InputChannelWise.group(&w, 2).is_err());
        let m = Tensor::zeros(vec![5, 2]);
        assert!(GroupingStrategy::OutputChannelWise.ungroup(&m, &[4, 4, 1, 1], 2).is_err());
        assert!(GroupingStrategy::OutputChannelWise.group(&Tensor::zeros(vec![4]), 2).is_err());
    }

    #[test]
    fn ng_counts_match_figure3() {
        // Fig. 3: kernel-wise R1 = Cout*Cin; channel-wise R2 = Cout/d*Cin*k*k
        let w = seq4(8, 4, 3, 3);
        let g = GroupingStrategy::KernelWise.group(&w, 9).unwrap();
        assert_eq!(g.dims()[0], 8 * 4);
        let g = GroupingStrategy::OutputChannelWise.group(&w, 4).unwrap();
        assert_eq!(g.dims()[0], (8 / 4) * 4 * 9);
    }

    #[test]
    fn default_is_output_wise() {
        assert_eq!(GroupingStrategy::default(), GroupingStrategy::OutputChannelWise);
    }
}
