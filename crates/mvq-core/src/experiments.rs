//! Reusable experiment drivers for the paper's empirical studies.
//!
//! The headline driver here is the Table 1 importance case study; the
//! larger sweeps (pruning strategy, CR-accuracy frontiers) are composed in
//! the `mvq-bench` harness from these pieces plus the pipeline APIs.

use mvq_nn::data::SyntheticClassification;
use mvq_nn::layers::Sequential;
use mvq_nn::train::evaluate_classifier;
use mvq_tensor::Tensor;
use rand::Rng;

use crate::baselines::vq_plain::vq_case_a;
use crate::error::MvqError;
use crate::grouping::GroupingStrategy;

/// Result of one arm of the Table 1 case study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceCaseResult {
    /// SSE introduced by the partial replacement.
    pub sse: f32,
    /// Top-1 accuracy after replacement, without fine-tuning.
    pub accuracy: f32,
}

/// Output of the Table 1 experiment on one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceStudy {
    /// Dense (unmodified) accuracy.
    pub dense_accuracy: f32,
    /// Case 1: *important* weights replaced by their VQ reconstruction.
    pub case1: ImportanceCaseResult,
    /// Case 2: *unimportant* weights replaced by their VQ reconstruction.
    pub case2: ImportanceCaseResult,
}

/// Reproduces the paper's §4.1 empirical observation (Table 1):
///
/// 1. mark the top-`keep` weights by magnitude in every `group` consecutive
///    weights as *important* (the paper uses 2 of 8, i.e. 25 %);
/// 2. vector-quantize every compressible conv layerwise (`k`, `d`,
///    common k-means — no masking, no fine-tuning);
/// 3. Case 1 replaces only important weights with their quantized values;
///    Case 2 replaces only the unimportant ones;
/// 4. report SSE and top-1 accuracy for both cases.
///
/// The paper's finding — Case 2 keeps far higher accuracy despite higher
/// SSE — should reproduce for any trained model.
///
/// # Errors
///
/// Propagates clustering/evaluation errors.
#[allow(clippy::too_many_arguments)]
pub fn importance_case_study<R: Rng>(
    model: &mut Sequential,
    data: &SyntheticClassification,
    k: usize,
    d: usize,
    keep: usize,
    group: usize,
    grouping: GroupingStrategy,
    rng: &mut R,
) -> Result<ImportanceStudy, MvqError> {
    let dense_accuracy = evaluate_classifier(model, data)?;
    // snapshot dense weights and compute per-conv VQ reconstructions
    let mut dense: Vec<Tensor> = Vec::new();
    model.visit_convs(&mut |c| dense.push(c.weight.value.clone()));
    let mut vq: Vec<Option<Tensor>> = Vec::new();
    for w in &dense {
        match vq_case_a(w, k, d, grouping, Some(8), crate::kernels::KernelStrategy::default(), rng)
        {
            Ok(res) => vq.push(Some(res.reconstruct()?)),
            Err(MvqError::IncompatibleShape { .. }) => vq.push(None),
            Err(e) => return Err(e),
        }
    }
    let important = importance_masks(&dense, keep, group);

    let case1 = run_case(model, data, &dense, &vq, &important, true)?;
    let case2 = run_case(model, data, &dense, &vq, &important, false)?;
    // restore dense weights
    restore(model, &dense);
    Ok(ImportanceStudy { dense_accuracy, case1, case2 })
}

/// Boolean importance per weight: top-`keep` magnitudes of every `group`
/// consecutive scalars in flattened order.
fn importance_masks(weights: &[Tensor], keep: usize, group: usize) -> Vec<Vec<bool>> {
    weights
        .iter()
        .map(|w| {
            let data = w.data();
            let mut mask = vec![false; data.len()];
            let mut start = 0;
            while start < data.len() {
                let end = (start + group).min(data.len());
                let slice = &data[start..end];
                let mut order: Vec<usize> = (0..slice.len()).collect();
                order.sort_by(|&a, &b| {
                    slice[b].abs().partial_cmp(&slice[a].abs()).expect("finite").then(a.cmp(&b))
                });
                for &t in order.iter().take(keep.min(slice.len())) {
                    mask[start + t] = true;
                }
                start = end;
            }
            mask
        })
        .collect()
}

fn run_case(
    model: &mut Sequential,
    data: &SyntheticClassification,
    dense: &[Tensor],
    vq: &[Option<Tensor>],
    important: &[Vec<bool>],
    replace_important: bool,
) -> Result<ImportanceCaseResult, MvqError> {
    let mut sse = 0.0f64;
    let mut idx = 0usize;
    model.visit_convs_mut(&mut |conv| {
        if let Some(q) = &vq[idx] {
            let orig = &dense[idx];
            let imp = &important[idx];
            let mut blended = orig.clone();
            for (t, b) in blended.data_mut().iter_mut().enumerate() {
                if imp[t] == replace_important {
                    let e = (*b - q.data()[t]) as f64;
                    sse += e * e;
                    *b = q.data()[t];
                }
            }
            conv.weight.value = blended;
        }
        idx += 1;
    });
    let accuracy = evaluate_classifier(model, data)?;
    restore(model, dense);
    Ok(ImportanceCaseResult { sse: sse as f32, accuracy })
}

fn restore(model: &mut Sequential, dense: &[Tensor]) {
    let mut idx = 0usize;
    model.visit_convs_mut(&mut |conv| {
        conv.weight.value = dense[idx].clone();
        idx += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_nn::models::tiny_cnn;
    use mvq_nn::optim::{Optimizer, OptimizerKind};
    use mvq_nn::train::{train_classifier, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn importance_masks_mark_top_magnitudes() {
        let w = Tensor::from_vec(vec![1, 8], vec![0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6]).unwrap();
        let masks = importance_masks(&[w], 2, 8);
        assert_eq!(masks[0], vec![false, true, false, true, false, false, false, false]);
    }

    #[test]
    fn case_study_restores_model() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = SyntheticClassification::generate(3, 48, 24, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        let mut before = Vec::new();
        model.visit_convs(&mut |c| before.push(c.weight.value.clone()));
        importance_case_study(
            &mut model,
            &data,
            8,
            8,
            2,
            8,
            GroupingStrategy::OutputChannelWise,
            &mut rng,
        )
        .unwrap();
        let mut after = Vec::new();
        model.visit_convs(&mut |c| after.push(c.weight.value.clone()));
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn case1_damages_more_than_case2_on_trained_model() {
        // The paper's central observation, on a small trained CNN.
        let mut rng = StdRng::seed_from_u64(1);
        let data = SyntheticClassification::generate(4, 192, 96, 8, &mut rng);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let tc = TrainConfig { epochs: 6, batch_size: 32, ..TrainConfig::default() };
        train_classifier(
            &mut model,
            &data,
            &tc,
            &mut Optimizer::new(OptimizerKind::sgd(0.05, 0.9, 0.0)),
            &mut rng,
        )
        .unwrap();
        let study = importance_case_study(
            &mut model,
            &data,
            4, // few codewords -> coarse quantization, visible damage
            8,
            2,
            8,
            GroupingStrategy::OutputChannelWise,
            &mut rng,
        )
        .unwrap();
        // Case 2 replaces 75 % of the weights, so its SSE is at least
        // comparable to case 1's (the exact ordering depends on k — the
        // paper's k=512 gives case 2 slightly higher SSE).
        assert!(
            study.case2.sse > study.case1.sse * 0.3,
            "case2 sse {} vs case1 sse {}",
            study.case2.sse,
            study.case1.sse
        );
        // The robust paper finding: quantizing the *unimportant* weights
        // (case 2) must not hurt accuracy more than quantizing the
        // important ones (case 1).
        assert!(
            study.case2.accuracy >= study.case1.accuracy,
            "case2 acc {} !>= case1 acc {}",
            study.case2.accuracy,
            study.case1.accuracy
        );
    }
}
