//! Blocked and SIMD mask-aware distance/assignment kernels — the hot loop
//! of every clustering-based compressor in the registry.
//!
//! Masked k-means (and the dense k-means the baselines run) spend almost
//! all of their time computing `argmin_i ‖w_j − c_i ∘ bm_j‖²` over all
//! subvectors × codewords. This module provides four interchangeable
//! implementations selected by [`KernelStrategy`]:
//!
//! * **`Naive`** — the per-row reference ([`crate::masked_assign_naive`]
//!   for the masked case, [`dense_assign_naive`] for the dense case). This
//!   is the *oracle*: every other kernel is validated against it, and its
//!   fixed left-to-right f32 accumulation order defines the bit pattern
//!   the order-preserving strategies must reproduce.
//! * **`Blocked`** — cache-blocked tiles over subvectors × codewords with a
//!   branch-free masked inner loop. The mask is applied through the
//!   existing [`MaskLut`] path: each subvector's M-groups are encoded to
//!   LUT indices once, deduplicated into distinct patterns, and decoded
//!   back into 0.0/1.0 lane multipliers (a [`MaskedDistancePlan`]).
//!   Independent accumulator chains across the codeword tile restore
//!   instruction-level parallelism that the naive kernel's single
//!   accumulator chain forfeits — while each `(subvector, codeword)` pair
//!   still accumulates its lanes in exactly the naive order, so
//!   assignments and SSE are **bit-identical** to the oracle.
//! * **`Simd`** — explicitly lane-parallel kernels: each distance runs
//!   [`SIMD_CHUNK`] (8) per-lane f32 accumulator chains over 8-lane blocks
//!   of the subvector, reduced by a fixed pairwise tree at the end. The
//!   code is written so stable Rust's autovectorizer emits packed SIMD for
//!   the chunk loop (fixed-size `[f32; 8]` blocks, no bounds checks in
//!   the hot path); an optional `std::arch` AVX path lives behind the
//!   `simd-intrinsics` cargo feature (runtime-detected, bit-identical to
//!   the portable chunked path — see the `avx` module). Lane-parallel
//!   accumulation **reassociates** f32 adds, so this strategy is *not*
//!   bit-identical to the oracle; see the validation convention below.
//! * **`Minibatch`** — the assignment kernel is the blocked one; the
//!   strategy additionally switches the k-means *loop* to per-iteration
//!   sampled minibatches (see [`crate::masked_kmeans_minibatch`]).
//!
//! ## Why `c[t] * multiplier[t]` is bit-identical to the branchy oracle
//!
//! For a kept lane the multiplier is `1.0` and `c * 1.0 == c` bitwise. For
//! a pruned lane the multiplier is `0.0` and `c * 0.0` is `±0.0`; the
//! subtraction `w − ±0.0` can then differ from the oracle's `w − 0.0` only
//! in the sign of a zero, and squaring erases that sign. Every term added
//! to the accumulator is therefore bit-equal to the oracle's term; only
//! the *order* the terms are added in can distinguish strategies.
//!
//! ## Validation convention
//!
//! New kernels must not reach the registry until they pass the
//! differential oracle harness ([`crate::differential`], driven from
//! `tests/properties.rs`) over randomized shapes, masks and seeds, in both
//! debug and `--release` builds (the release run and the CI
//! `target-cpu=native` leg are what catch fast-math / target-feature
//! reassociation regressions). Two contract tiers:
//!
//! * **order-preserving kernels** (`Blocked`): exact assignment equality
//!   *and* 0-ULP SSE equality against the naive oracle;
//! * **reassociating kernels** (`Simd`): exact assignment equality, ties
//!   broken to the lowest codeword index, and SSE within the pinned
//!   [`REASSOC_SSE_ULP_BOUND`] ULPs of the oracle. (Per-lane accumulation
//!   changes *which* f32 roundings happen, not determinism: results are
//!   identical across debug/release/opt levels, just not bit-equal to the
//!   sequential order.) Assignment equality for a reassociating kernel is
//!   an *empirical* contract enforced by the harness, not a theorem: two
//!   codewords whose true distances differ by less than the reassociation
//!   rounding could in principle order differently under the two sums.
//!   Exact ties (bit-equal distance computations, e.g. duplicated
//!   codewords) are safe by construction — both orders produce the same
//!   bits and strict `<` picks the lowest index; the sub-rounding near-tie
//!   is what the ≥ 256-case randomized sweep plus the full-clustering
//!   conformance runs guard against.

use std::str::FromStr;

use mvq_tensor::Tensor;

use crate::error::MvqError;
use crate::mask::NmMask;
use crate::mask_lut::MaskLut;
use crate::masked_kmeans::masked_assign_naive;

/// Which distance/assignment kernel the clustering loops dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelStrategy {
    /// Per-row reference kernels — the oracle all others are tested
    /// against.
    Naive,
    /// Cache-blocked, LUT-masked kernels; bit-identical to `Naive`.
    #[default]
    Blocked,
    /// Blocked kernels plus minibatch-sampled k-means iterations
    /// (deterministic for a fixed seed, not bit-identical to full-batch
    /// runs).
    Minibatch,
    /// Lane-parallel SIMD kernels (8-lane f32 chunks, per-lane
    /// accumulators): assignment-identical to `Naive` with SSE within
    /// [`REASSOC_SSE_ULP_BOUND`] ULPs (f32 adds are reassociated).
    Simd,
}

impl KernelStrategy {
    /// Every strategy, in tag order — the canonical iteration set for
    /// tests and benches.
    pub const ALL: [KernelStrategy; 4] = [
        KernelStrategy::Naive,
        KernelStrategy::Blocked,
        KernelStrategy::Minibatch,
        KernelStrategy::Simd,
    ];

    /// Registry-style name (`naive` / `blocked` / `minibatch` / `simd`).
    pub fn name(self) -> &'static str {
        match self {
            KernelStrategy::Naive => "naive",
            KernelStrategy::Blocked => "blocked",
            KernelStrategy::Minibatch => "minibatch",
            KernelStrategy::Simd => "simd",
        }
    }
}

impl FromStr for KernelStrategy {
    type Err = MvqError;

    /// Case-insensitive inverse of [`KernelStrategy::name`] — the one
    /// parser every consumer that names strategies (benches, CLIs, specs)
    /// must go through, so unknown names fail identically everywhere.
    fn from_str(s: &str) -> Result<KernelStrategy, MvqError> {
        KernelStrategy::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s.trim()))
            .ok_or_else(|| {
                let known: Vec<&str> = KernelStrategy::ALL.iter().map(|k| k.name()).collect();
                MvqError::InvalidConfig(format!(
                    "unknown kernel strategy `{s}` (known: {})",
                    known.join(", ")
                ))
            })
    }
}

/// f32 lanes per chunk of the SIMD kernels: one 256-bit vector of per-lane
/// accumulators (or two 128-bit vectors on SSE-only targets).
pub const SIMD_CHUNK: usize = 8;

/// Pinned ULP bound for the SSE a reassociating kernel ([`KernelStrategy::
/// Simd`]) reports, measured against the naive oracle's sequential f64
/// accumulation. The per-row sums run in 8 f64 lane chains reduced by a
/// fixed tree, so the divergence is a handful of f64 roundings — far below
/// one f32 ULP in practice; the bound leaves headroom for adversarial
/// cancellation. Enforced by `tests/properties.rs` through
/// [`crate::differential`].
pub const REASSOC_SSE_ULP_BOUND: u32 = 8;

/// Rows per tile of the blocked kernels: the row tile's data plus its lane
/// multipliers stay resident in L1 while a codeword tile streams past.
const ROW_TILE: usize = 64;
/// Codewords per tile; `CENTER_TILE × d` f32 lanes is well under L1 even
/// at d = 64.
const CENTER_TILE: usize = 16;
/// Accumulator chains kept in flight per row of a tile (ILP width).
const LANES: usize = 4;

/// Precomputed mask state for the blocked kernels: every subvector's
/// M-groups encoded through the [`MaskLut`], deduplicated into distinct
/// row patterns, and decoded back into f32 lane multipliers.
#[derive(Debug, Clone)]
pub struct MaskedDistancePlan {
    d: usize,
    /// Pattern id per subvector.
    pattern_of: Vec<u32>,
    /// `[n_patterns × d]` row-major 0.0/1.0 multipliers.
    multipliers: Vec<f32>,
}

impl MaskedDistancePlan {
    /// Builds the plan for `mask` by round-tripping every M-group through
    /// the [`MaskLut`] encoder — the same compact-index path the simulated
    /// hardware weight loader uses.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the mask's N:M pair cannot
    /// form a LUT (propagated from [`MaskLut::new`]).
    pub fn new(mask: &NmMask) -> Result<MaskedDistancePlan, MvqError> {
        let (ng, d, m) = (mask.ng(), mask.d(), mask.m());
        let lut = MaskLut::new(mask.keep_n(), m)?;
        let groups = d / m;
        // Encode each row's groups to LUT indices; the index vector is the
        // dedup key, so identical mask rows share one multiplier pattern.
        let mut pattern_of = Vec::with_capacity(ng);
        let mut multipliers: Vec<f32> = Vec::new();
        let mut lookup: std::collections::HashMap<Vec<u32>, u32> = std::collections::HashMap::new();
        for j in 0..ng {
            let row = mask.row(j);
            let mut key = Vec::with_capacity(groups);
            for g in 0..groups {
                key.push(lut.encode(&row[g * m..(g + 1) * m])?);
            }
            let next = (multipliers.len() / d.max(1)) as u32;
            let id = *lookup.entry(key.clone()).or_insert_with(|| {
                // decode back through the LUT so the multipliers come from
                // the same table the hardware loader reads
                for &idx in &key {
                    let bits = lut.decode(idx).expect("encoded above");
                    multipliers.extend(bits.iter().map(|&b| if b { 1.0 } else { 0.0 }));
                }
                next
            });
            pattern_of.push(id);
        }
        Ok(MaskedDistancePlan { d, pattern_of, multipliers })
    }

    /// Number of distinct mask patterns across the subvectors.
    pub fn pattern_count(&self) -> usize {
        self.multipliers.len().checked_div(self.d).unwrap_or(0)
    }

    /// The dense "plan": one all-ones pattern shared by every subvector.
    /// `c * 1.0` is bitwise `c`, so the masked kernels run unmasked data
    /// with zero divergence from [`dense_assign_naive`] — the dense and
    /// masked blocked kernels are one implementation.
    pub(crate) fn dense(d: usize) -> MaskedDistancePlan {
        MaskedDistancePlan { d, pattern_of: Vec::new(), multipliers: vec![1.0; d] }
    }

    /// The 0.0/1.0 lane multipliers for subvector `j`.
    #[inline]
    pub(crate) fn multiplier_row(&self, j: usize) -> &[f32] {
        let p = self.pattern_of.get(j).map_or(0, |&p| p as usize);
        &self.multipliers[p * self.d..(p + 1) * self.d]
    }
}

fn validate_assign_inputs(
    data: &Tensor,
    centers: &Tensor,
    mask: Option<&NmMask>,
) -> Result<(usize, usize, usize), MvqError> {
    if data.rank() != 2 || data.numel() == 0 {
        return Err(MvqError::InvalidConfig(format!(
            "assignment kernels expect a non-empty [NG, d] matrix, got {:?}",
            data.dims()
        )));
    }
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    if centers.rank() != 2 || centers.dims()[0] == 0 || centers.dims()[1] != d {
        return Err(MvqError::InvalidConfig(format!(
            "centers {:?} do not match data [{ng}, {d}]",
            centers.dims()
        )));
    }
    if let Some(mask) = mask {
        if mask.ng() != ng || mask.d() != d {
            return Err(MvqError::InvalidConfig(format!(
                "mask [{}, {}] does not match data [{ng}, {d}]",
                mask.ng(),
                mask.d()
            )));
        }
    }
    Ok((ng, d, centers.dims()[0]))
}

/// Masked nearest-codeword assignment via the kernel selected by
/// `strategy` (`Minibatch` uses the blocked kernel — minibatching applies
/// to the k-means loop, not to a single assignment pass).
///
/// The equivalence guarantees assume finite codeword values: a ±inf/NaN
/// codeword lane that the mask prunes contributes `NaN` under the
/// multiplier kernels' (`Blocked`, `Simd`) `c * 0.0` but `0.0` under the
/// oracle's branch, so the strategies may then disagree on that codeword.
/// Every codebook this crate produces is finite; shapes are validated
/// here, finiteness is not.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for empty data, empty codebooks, or
/// mask/data/center shape mismatches.
pub fn masked_assign_with(
    strategy: KernelStrategy,
    data: &Tensor,
    mask: &NmMask,
    centers: &Tensor,
) -> Result<Vec<u32>, MvqError> {
    validate_assign_inputs(data, centers, Some(mask))?;
    match strategy {
        KernelStrategy::Naive => Ok(masked_assign_naive(data, mask, centers)),
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            let plan = MaskedDistancePlan::new(mask)?;
            let mut assign = vec![0u32; data.dims()[0]];
            masked_assign_blocked_into(data, &plan, centers, &mut assign);
            Ok(assign)
        }
        KernelStrategy::Simd => {
            let plan = MaskedDistancePlan::new(mask)?;
            let mut assign = vec![0u32; data.dims()[0]];
            masked_assign_simd_into(data, &plan, centers, &mut assign);
            Ok(assign)
        }
    }
}

/// Masked SSE `Σ_j ‖w_j − c_{a_j} ∘ bm_j‖²` via the kernel selected by
/// `strategy`. The order-preserving strategies (`Naive`, `Blocked`,
/// `Minibatch`) are 0-ULP identical (f64 accumulation in row order);
/// `Simd` accumulates per-lane and is within [`REASSOC_SSE_ULP_BOUND`]
/// ULPs of the oracle.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] on shape mismatches or assignments
/// out of range.
pub fn masked_sse_with(
    strategy: KernelStrategy,
    data: &Tensor,
    mask: &NmMask,
    centers: &Tensor,
    assign: &[u32],
) -> Result<f32, MvqError> {
    let (ng, _, k) = validate_assign_inputs(data, centers, Some(mask))?;
    if assign.len() != ng {
        return Err(MvqError::InvalidConfig(format!(
            "{} assignments for {ng} subvectors",
            assign.len()
        )));
    }
    if assign.iter().any(|&a| a as usize >= k) {
        return Err(MvqError::InvalidConfig(format!("assignment out of range for k = {k}")));
    }
    match strategy {
        KernelStrategy::Naive => {
            Ok(crate::masked_kmeans::masked_sse_naive(data, mask, centers, assign))
        }
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            let plan = MaskedDistancePlan::new(mask)?;
            Ok(masked_sse_blocked(data, &plan, centers, assign))
        }
        KernelStrategy::Simd => {
            let plan = MaskedDistancePlan::new(mask)?;
            Ok(masked_sse_simd(data, &plan, centers, assign))
        }
    }
}

/// One masked assignment pass writing into `assign`; returns the number of
/// changed assignments. Shapes must be pre-validated (the k-means loops
/// own validation); `plan` is only required — and only read — for the
/// blocked strategies.
pub(crate) fn masked_assign_step(
    strategy: KernelStrategy,
    data: &Tensor,
    mask: &NmMask,
    plan: Option<&MaskedDistancePlan>,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    match strategy {
        KernelStrategy::Naive => {
            let fresh = masked_assign_naive(data, mask, centers);
            let mut changed = 0;
            for (slot, new) in assign.iter_mut().zip(fresh) {
                if *slot != new {
                    *slot = new;
                    changed += 1;
                }
            }
            changed
        }
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            let plan = plan.expect("blocked strategies require a mask plan");
            masked_assign_blocked_into(data, plan, centers, assign)
        }
        KernelStrategy::Simd => {
            let plan = plan.expect("the simd strategy requires a mask plan");
            masked_assign_simd_into(data, plan, centers, assign)
        }
    }
}

/// The blocked masked-assignment kernel.
///
/// Tiles `ROW_TILE` subvectors × `CENTER_TILE` codewords so a codeword
/// tile stays L1-resident across the row tile, runs `LANES` independent
/// accumulator chains per row for ILP, and applies the mask branch-free
/// through the plan's LUT-decoded multipliers. Codewords are visited in
/// ascending index within and across tiles, and each `(j, i)` distance
/// accumulates lanes left-to-right, so the result is bit-identical to
/// [`masked_assign_naive`] (ties break to the lowest index in both).
pub(crate) fn masked_assign_blocked_into(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut changed = 0usize;
    let mut dist = [0.0f32; CENTER_TILE];
    for row0 in (0..ng).step_by(ROW_TILE) {
        let row1 = (row0 + ROW_TILE).min(ng);
        let mut best = [0u32; ROW_TILE];
        let mut best_v = [f32::INFINITY; ROW_TILE];
        for c0 in (0..k).step_by(CENTER_TILE) {
            let c1 = (c0 + CENTER_TILE).min(k);
            for j in row0..row1 {
                let row = data.row(j);
                let mm = plan.multiplier_row(j);
                // LANES independent accumulator chains: each codeword owns
                // one accumulator, and each accumulator adds its lane terms
                // in ascending t — the oracle's exact order per codeword.
                let mut i = c0;
                while i + LANES <= c1 {
                    let c_a = centers.row(i);
                    let c_b = centers.row(i + 1);
                    let c_c = centers.row(i + 2);
                    let c_d = centers.row(i + 3);
                    let (mut acc_a, mut acc_b, mut acc_c, mut acc_d) =
                        (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    for t in 0..d {
                        let (w, m) = (row[t], mm[t]);
                        let e_a = w - c_a[t] * m;
                        let e_b = w - c_b[t] * m;
                        let e_c = w - c_c[t] * m;
                        let e_d = w - c_d[t] * m;
                        acc_a += e_a * e_a;
                        acc_b += e_b * e_b;
                        acc_c += e_c * e_c;
                        acc_d += e_d * e_d;
                    }
                    dist[i - c0] = acc_a;
                    dist[i + 1 - c0] = acc_b;
                    dist[i + 2 - c0] = acc_c;
                    dist[i + 3 - c0] = acc_d;
                    i += LANES;
                }
                while i < c1 {
                    let c = centers.row(i);
                    let mut acc = 0.0f32;
                    for t in 0..d {
                        let e = row[t] - c[t] * mm[t];
                        acc += e * e;
                    }
                    dist[i - c0] = acc;
                    i += 1;
                }
                // compare in ascending codeword order: strict `<` keeps the
                // lowest index on ties, matching the oracle
                let jj = j - row0;
                for i in c0..c1 {
                    let v = dist[i - c0];
                    if v < best_v[jj] {
                        best_v[jj] = v;
                        best[jj] = i as u32;
                    }
                }
            }
        }
        for j in row0..row1 {
            let b = best[j - row0];
            if assign[j] != b {
                assign[j] = b;
                changed += 1;
            }
        }
    }
    changed
}

/// Blocked masked SSE: a single f64 accumulator visited in exactly the
/// naive order (row-major, lanes ascending), with the branch-free
/// multiplier inner loop — 0 ULP from the naive reference.
pub(crate) fn masked_sse_blocked(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &[u32],
) -> f32 {
    let mut sse = 0.0f64;
    masked_sse_blocked_acc(data, plan, centers, assign, &mut sse);
    sse as f32
}

/// [`masked_sse_blocked`]'s loop folding into a caller-owned f64: the
/// chunked crosslayer path threads one accumulator across per-layer
/// chunks so the total is 0 ULP from a run over their concatenation.
pub(crate) fn masked_sse_blocked_acc(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &[u32],
    sse: &mut f64,
) {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    for j in 0..ng {
        let row = data.row(j);
        let mm = plan.multiplier_row(j);
        let c = centers.row(assign[j] as usize);
        for t in 0..d {
            let e = row[t] - c[t] * mm[t];
            *sse += (e * e) as f64;
        }
    }
}

// ---------------------------------------------------------------------
// SIMD kernels: lane-parallel accumulation in fixed 8-lane chunks
// ---------------------------------------------------------------------

/// Reduces [`SIMD_CHUNK`] per-lane accumulators with a fixed pairwise
/// tree. Every SIMD path — portable and intrinsics — must end its distance
/// in exactly this order so the strategy's results do not depend on which
/// backend ran.
#[inline]
fn reduce_chunk(acc: [f32; SIMD_CHUNK]) -> f32 {
    // fold-by-half: lane l meets lane l+4, then l+2, then l+1 — the
    // vector-friendly tree (each level is one packed add on half-width
    // shuffles)
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s2) + (s1 + s3)
}

/// f64 twin of [`reduce_chunk`] for the SSE kernel.
#[inline]
fn reduce_chunk_f64(acc: [f64; SIMD_CHUNK]) -> f64 {
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s2) + (s1 + s3)
}

/// Masked distance of one subvector to one codeword: per-lane f32
/// accumulators over 8-lane chunks (lane `l` owns every `t ≡ l (mod 8)`),
/// the `d % 8` tail folded into lanes `0..d % 8` after the full chunks,
/// then the [`reduce_chunk`] tree. Each term is bit-equal to the oracle's
/// (`w − c·m` then square); only the summation order differs.
#[inline]
fn masked_distance_simd(row: &[f32], mm: &[f32], c: &[f32]) -> f32 {
    let d = row.len();
    let full = d - d % SIMD_CHUNK;
    let mut acc = [0.0f32; SIMD_CHUNK];
    // iterator zips over fixed-width chunks: no bounds checks in the lane
    // loop, which is what lets the autovectorizer emit packed ops
    for ((r8, m8), c8) in row[..full]
        .chunks_exact(SIMD_CHUNK)
        .zip(mm[..full].chunks_exact(SIMD_CHUNK))
        .zip(c[..full].chunks_exact(SIMD_CHUNK))
    {
        for l in 0..SIMD_CHUNK {
            let e = r8[l] - c8[l] * m8[l];
            acc[l] += e * e;
        }
    }
    for t in full..d {
        let e = row[t] - c[t] * mm[t];
        acc[t - full] += e * e;
    }
    reduce_chunk(acc)
}

/// [`masked_distance_simd`] for two consecutive codewords at once: the
/// row/multiplier chunk is loaded once and two independent accumulator
/// blocks keep the vector pipelines full without spilling registers on
/// 16-register targets (2 × 8 accumulators + operands fit; four blocks do
/// not). Each codeword's association is exactly the single-codeword one,
/// so results do not depend on where a codeword falls relative to the
/// pair.
#[inline]
fn masked_distance_simd_x2(row: &[f32], mm: &[f32], c0: &[f32], c1: &[f32]) -> [f32; 2] {
    let d = row.len();
    let full = d - d % SIMD_CHUNK;
    let mut acc0 = [0.0f32; SIMD_CHUNK];
    let mut acc1 = [0.0f32; SIMD_CHUNK];
    for (((r8, m8), c08), c18) in row[..full]
        .chunks_exact(SIMD_CHUNK)
        .zip(mm[..full].chunks_exact(SIMD_CHUNK))
        .zip(c0[..full].chunks_exact(SIMD_CHUNK))
        .zip(c1[..full].chunks_exact(SIMD_CHUNK))
    {
        for l in 0..SIMD_CHUNK {
            let (w, m) = (r8[l], m8[l]);
            let e0 = w - c08[l] * m;
            let e1 = w - c18[l] * m;
            acc0[l] += e0 * e0;
            acc1[l] += e1 * e1;
        }
    }
    for t in full..d {
        let (w, m) = (row[t], mm[t]);
        let l = t - full;
        let e0 = w - c0[t] * m;
        let e1 = w - c1[t] * m;
        acc0[l] += e0 * e0;
        acc1[l] += e1 * e1;
    }
    [reduce_chunk(acc0), reduce_chunk(acc1)]
}

/// Best codeword for one row under the portable chunked path: codewords in
/// ascending index (pairs, then the tail), strict `<` so ties break to the
/// lowest index — the oracle's rule.
fn best_codeword_portable(row: &[f32], mm: &[f32], centers: &Tensor, k: usize) -> u32 {
    let mut best = 0u32;
    let mut best_v = f32::INFINITY;
    let mut i = 0;
    while i + 2 <= k {
        let d2 = masked_distance_simd_x2(row, mm, centers.row(i), centers.row(i + 1));
        for (o, &v) in d2.iter().enumerate() {
            if v < best_v {
                best_v = v;
                best = (i + o) as u32;
            }
        }
        i += 2;
    }
    if i < k {
        let v = masked_distance_simd(row, mm, centers.row(i));
        if v < best_v {
            best = i as u32;
        }
    }
    best
}

/// Best codeword for one row, dispatching to the runtime-detected AVX
/// backend when the `simd-intrinsics` feature is enabled (bit-identical to
/// the portable path by construction) and the portable chunked path
/// otherwise.
#[inline]
fn best_codeword_simd(row: &[f32], mm: &[f32], centers: &Tensor, k: usize) -> u32 {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if avx::available() {
        // SAFETY: `available()` verified the `avx` target feature at
        // runtime on this CPU.
        return unsafe { avx::best_codeword(row, mm, centers, k) };
    }
    best_codeword_portable(row, mm, centers, k)
}

/// The SIMD masked-assignment kernel: per row, [`best_codeword_simd`] over
/// the plan's LUT-decoded multipliers. Returns the number of changed
/// assignments.
pub(crate) fn masked_assign_simd_into(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    let ng = data.dims()[0];
    let k = centers.dims()[0];
    let mut changed = 0usize;
    for j in 0..ng {
        let best = best_codeword_simd(data.row(j), plan.multiplier_row(j), centers, k);
        if assign[j] != best {
            assign[j] = best;
            changed += 1;
        }
    }
    changed
}

/// SIMD masked SSE: per row, 8 f64 lane accumulators (each f32 term is
/// squared in f32 and widened, exactly like the oracle's terms) reduced by
/// [`reduce_chunk_f64`], row results summed in row order. Reassociates the
/// f64 adds, hence within [`REASSOC_SSE_ULP_BOUND`] ULPs of the naive SSE
/// rather than 0.
pub(crate) fn masked_sse_simd(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &[u32],
) -> f32 {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let full = d - d % SIMD_CHUNK;
    let mut total = 0.0f64;
    for j in 0..ng {
        let row = data.row(j);
        let mm = plan.multiplier_row(j);
        let c = centers.row(assign[j] as usize);
        let mut acc = [0.0f64; SIMD_CHUNK];
        let mut base = 0;
        while base < full {
            let r8: &[f32; SIMD_CHUNK] = row[base..base + SIMD_CHUNK].try_into().expect("chunk");
            let m8: &[f32; SIMD_CHUNK] = mm[base..base + SIMD_CHUNK].try_into().expect("chunk");
            let c8: &[f32; SIMD_CHUNK] = c[base..base + SIMD_CHUNK].try_into().expect("chunk");
            for l in 0..SIMD_CHUNK {
                let e = r8[l] - c8[l] * m8[l];
                acc[l] += (e * e) as f64;
            }
            base += SIMD_CHUNK;
        }
        for t in full..d {
            let e = row[t] - c[t] * mm[t];
            acc[t - full] += (e * e) as f64;
        }
        total += reduce_chunk_f64(acc);
    }
    total as f32
}

/// Runtime-detected AVX backend for the SIMD kernels, behind the
/// `simd-intrinsics` cargo feature (stable `std::arch`, no crates needed —
/// `vendor/` has no crates.io access). Bit-identical to the portable
/// chunked path: same per-lane accumulation (separate `mul`/`add`, never
/// FMA — fusing would skip an intermediate rounding), same tail handling,
/// same [`reduce_chunk`] tree.
#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
mod avx {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
        _mm256_sub_ps,
    };

    use mvq_tensor::Tensor;

    use super::{reduce_chunk, SIMD_CHUNK};

    /// Whether this CPU supports AVX (checked once).
    pub(super) fn available() -> bool {
        static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }

    /// AVX twin of `best_codeword_portable`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX support (see [`available`]).
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn best_codeword(row: &[f32], mm: &[f32], centers: &Tensor, k: usize) -> u32 {
        let d = row.len();
        let full = d - d % SIMD_CHUNK;
        let mut best = 0u32;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let c = centers.row(i);
            let mut acc = _mm256_setzero_ps();
            let mut base = 0;
            while base < full {
                // SAFETY: base + SIMD_CHUNK <= full <= d and row, mm, and
                // c are all d long, so every 8-lane read is in bounds;
                // loadu has no alignment requirement.
                let (w, m, cw) = unsafe {
                    (
                        _mm256_loadu_ps(row.as_ptr().add(base)),
                        _mm256_loadu_ps(mm.as_ptr().add(base)),
                        _mm256_loadu_ps(c.as_ptr().add(base)),
                    )
                };
                let e = _mm256_sub_ps(w, _mm256_mul_ps(cw, m));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(e, e));
                base += SIMD_CHUNK;
            }
            let mut lanes = [0.0f32; SIMD_CHUNK];
            // SAFETY: lanes is a stack array of exactly SIMD_CHUNK (8)
            // f32s — one full 256-bit store; storeu tolerates any
            // alignment.
            unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
            for t in full..d {
                let e = row[t] - c[t] * mm[t];
                lanes[t - full] += e * e;
            }
            let v = reduce_chunk(lanes);
            if v < best_v {
                best_v = v;
                best = i as u32;
            }
        }
        best
    }
}

/// Dense (unmasked) per-row reference assignment — the oracle for the
/// dense kernels, O(NG·k·d) with fixed left-to-right accumulation.
pub fn dense_assign_naive(data: &Tensor, centers: &Tensor) -> Vec<u32> {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut assign = vec![0u32; ng];
    for j in 0..ng {
        let row = data.row(j);
        let mut best = 0usize;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let c = centers.row(i);
            let mut acc = 0.0f32;
            for t in 0..d {
                let e = row[t] - c[t];
                acc += e * e;
            }
            if acc < best_v {
                best_v = acc;
                best = i;
            }
        }
        assign[j] = best as u32;
    }
    assign
}

/// Dense nearest-codeword assignment via the kernel selected by
/// `strategy`.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for empty data, empty codebooks, or
/// shape mismatches.
pub fn dense_assign_with(
    strategy: KernelStrategy,
    data: &Tensor,
    centers: &Tensor,
) -> Result<Vec<u32>, MvqError> {
    validate_assign_inputs(data, centers, None)?;
    let mut assign = vec![0u32; data.dims()[0]];
    dense_assign_step(strategy, data, centers, &mut assign);
    Ok(assign)
}

/// One dense assignment pass writing into `assign`; returns the number of
/// changed assignments.
pub(crate) fn dense_assign_step(
    strategy: KernelStrategy,
    data: &Tensor,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    match strategy {
        KernelStrategy::Naive => {
            let fresh = dense_assign_naive(data, centers);
            let mut changed = 0;
            for (slot, new) in assign.iter_mut().zip(fresh) {
                if *slot != new {
                    *slot = new;
                    changed += 1;
                }
            }
            changed
        }
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            dense_assign_blocked_into(data, centers, assign)
        }
        KernelStrategy::Simd => {
            let plan = MaskedDistancePlan::dense(data.dims()[1]);
            masked_assign_simd_into(data, &plan, centers, assign)
        }
    }
}

/// Dense blocked assignment: the masked blocked kernel driven by the
/// all-ones [`MaskedDistancePlan::dense`] plan. `c * 1.0` is bitwise `c`
/// (for every value, including ±0, infinities and NaN), so this is
/// bit-identical to [`dense_assign_naive`] while keeping a single copy of
/// the tiling/ILP logic under the oracle harness.
pub(crate) fn dense_assign_blocked_into(
    data: &Tensor,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    let plan = MaskedDistancePlan::dense(data.dims()[1]);
    masked_assign_blocked_into(data, &plan, centers, assign)
}

/// Default minibatch size for [`KernelStrategy::Minibatch`] dispatch:
/// `max(4k, 64)` rows, capped at the dataset — enough samples per batch to
/// touch every codeword a few times while keeping per-iteration cost far
/// below a full pass.
pub fn default_minibatch_size(ng: usize, k: usize) -> usize {
    (4 * k).max(64).min(ng.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::prune_matrix_nm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pruned_random(ng: usize, d: usize, n: usize, m: usize, seed: u64) -> (Tensor, NmMask) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq_tensor::uniform(vec![ng, d], -1.0, 1.0, &mut rng);
        prune_matrix_nm(&w, n, m).unwrap()
    }

    #[test]
    fn blocked_matches_naive_across_tile_boundaries() {
        // sizes straddling ROW_TILE / CENTER_TILE / LANES edges
        for &(ng, k) in &[(1usize, 1usize), (63, 15), (64, 16), (65, 17), (130, 37)] {
            let (data, mask) = pruned_random(ng, 8, 2, 4, ng as u64 + k as u64);
            let mut rng = StdRng::seed_from_u64(9);
            let centers = mvq_tensor::uniform(vec![k, 8], -1.0, 1.0, &mut rng);
            let naive = masked_assign_naive(&data, &mask, &centers);
            let blocked =
                masked_assign_with(KernelStrategy::Blocked, &data, &mask, &centers).unwrap();
            assert_eq!(naive, blocked, "ng={ng} k={k}");
        }
    }

    #[test]
    fn dense_blocked_matches_dense_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = mvq_tensor::uniform(vec![100, 12], -1.0, 1.0, &mut rng);
        let centers = mvq_tensor::uniform(vec![21, 12], -1.0, 1.0, &mut rng);
        let naive = dense_assign_naive(&data, &centers);
        let blocked = dense_assign_with(KernelStrategy::Blocked, &data, &centers).unwrap();
        assert_eq!(naive, blocked);
    }

    #[test]
    fn plan_dedups_patterns_and_uses_lut() {
        let bits = [true, true, false, false].repeat(10);
        let mask = NmMask::from_bits(10, 4, 2, 4, bits).unwrap();
        let plan = MaskedDistancePlan::new(&mask).unwrap();
        assert_eq!(plan.pattern_count(), 1);
        assert_eq!(plan.multiplier_row(7), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn checked_entry_points_validate() {
        let (data, mask) = pruned_random(8, 4, 2, 4, 0);
        let centers = Tensor::zeros(vec![3, 4]);
        // empty codebook
        let empty = Tensor::zeros(vec![0, 4]);
        assert!(masked_assign_with(KernelStrategy::Blocked, &data, &mask, &empty).is_err());
        // center d mismatch
        let wrong_d = Tensor::zeros(vec![3, 8]);
        assert!(masked_assign_with(KernelStrategy::Blocked, &data, &mask, &wrong_d).is_err());
        // mask mismatch
        let (_, other) = pruned_random(4, 4, 2, 4, 1);
        assert!(masked_assign_with(KernelStrategy::Blocked, &data, &other, &centers).is_err());
        // sse: assignment out of range
        let err = masked_sse_with(KernelStrategy::Blocked, &data, &mask, &centers, &[9; 8]);
        assert!(err.is_err());
        // sse: wrong assignment length
        let err = masked_sse_with(KernelStrategy::Naive, &data, &mask, &centers, &[0; 3]);
        assert!(err.is_err());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(KernelStrategy::default(), KernelStrategy::Blocked);
        assert_eq!(KernelStrategy::Naive.name(), "naive");
        assert_eq!(KernelStrategy::Blocked.name(), "blocked");
        assert_eq!(KernelStrategy::Minibatch.name(), "minibatch");
        assert_eq!(KernelStrategy::Simd.name(), "simd");
    }

    #[test]
    fn from_str_round_trips_case_insensitively() {
        for strategy in KernelStrategy::ALL {
            assert_eq!(strategy.name().parse::<KernelStrategy>().unwrap(), strategy);
            assert_eq!(strategy.name().to_uppercase().parse::<KernelStrategy>().unwrap(), strategy);
        }
        assert_eq!(" Simd ".parse::<KernelStrategy>().unwrap(), KernelStrategy::Simd);
        let err = "blas".parse::<KernelStrategy>().unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)));
        assert!(err.to_string().contains("blas") && err.to_string().contains("simd"), "{err}");
    }

    #[test]
    fn simd_matches_naive_across_chunk_boundaries() {
        // d values straddling SIMD_CHUNK (full chunks, tail-only, mixed)
        // and k values straddling the 4-codeword block
        for &d in &[4usize, 8, 12, 16, 24] {
            for &(ng, k) in &[(1usize, 1usize), (3, 2), (63, 3), (64, 5), (65, 17), (130, 37)] {
                let (data, mask) = pruned_random(ng, d, 2, 4, (ng + k + d) as u64);
                let mut rng = StdRng::seed_from_u64(9);
                let centers = mvq_tensor::uniform(vec![k, d], -1.0, 1.0, &mut rng);
                let naive = masked_assign_naive(&data, &mask, &centers);
                let simd =
                    masked_assign_with(KernelStrategy::Simd, &data, &mask, &centers).unwrap();
                assert_eq!(naive, simd, "ng={ng} k={k} d={d}");
            }
        }
    }

    #[test]
    fn simd_sse_is_within_the_pinned_ulp_bound() {
        let (data, mask) = pruned_random(96, 16, 4, 16, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let centers = mvq_tensor::uniform(vec![24, 16], -1.0, 1.0, &mut rng);
        let assign = masked_assign_naive(&data, &mask, &centers);
        let naive =
            masked_sse_with(KernelStrategy::Naive, &data, &mask, &centers, &assign).unwrap();
        let simd = masked_sse_with(KernelStrategy::Simd, &data, &mask, &centers, &assign).unwrap();
        let ulp = crate::differential::ulp_distance(naive, simd);
        assert!(ulp <= REASSOC_SSE_ULP_BOUND, "sse {naive} vs {simd}: {ulp} ULPs");
    }

    #[test]
    fn dense_simd_matches_dense_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = mvq_tensor::uniform(vec![100, 12], -1.0, 1.0, &mut rng);
        let centers = mvq_tensor::uniform(vec![21, 12], -1.0, 1.0, &mut rng);
        let naive = dense_assign_naive(&data, &centers);
        let simd = dense_assign_with(KernelStrategy::Simd, &data, &centers).unwrap();
        assert_eq!(naive, simd);
    }

    #[test]
    fn every_strategy_breaks_exact_ties_to_the_lowest_index() {
        // Constructed ties, two ways:
        //  1. duplicated codewords — identical rows produce bit-identical
        //     distances under any kernel, so the lower index must win;
        //  2. sign-symmetric codewords around data at the origin —
        //     (0 − x)² == (0 + x)² lane for lane, again bit-equal.
        let d = 8;
        let zeros = Tensor::zeros(vec![4, d]);
        let bits = [true, true, false, false].repeat(2 * 4);
        let mask = NmMask::from_bits(4, d, 2, 4, bits).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        // k = 6 with codeword 2 duplicating codeword 0 and codeword 5
        // duplicating codeword 3
        let mut centers = mvq_tensor::uniform(vec![6, d], -1.0, 1.0, &mut rng);
        let c0 = centers.row(0).to_vec();
        centers.row_mut(2).copy_from_slice(&c0);
        let c3 = centers.row(3).to_vec();
        centers.row_mut(5).copy_from_slice(&c3);
        for strategy in KernelStrategy::ALL {
            let assign = masked_assign_with(strategy, &zeros, &mask, &centers).unwrap();
            for (j, &a) in assign.iter().enumerate() {
                assert_ne!(a, 2, "{strategy:?}: row {j} picked the duplicate of codeword 0");
                assert_ne!(a, 5, "{strategy:?}: row {j} picked the duplicate of codeword 3");
            }
        }
        // sign-symmetric pair: +v at index 1 vs −v at index 0 ties on
        // zero data, so every strategy must report index 0
        let mut sym = Tensor::zeros(vec![2, d]);
        for t in 0..d {
            let v = 0.25 + t as f32 * 0.125;
            sym.row_mut(0)[t] = -v;
            sym.row_mut(1)[t] = v;
        }
        for strategy in KernelStrategy::ALL {
            let assign = masked_assign_with(strategy, &zeros, &mask, &sym).unwrap();
            assert!(assign.iter().all(|&a| a == 0), "{strategy:?}: {assign:?}");
            let dense = dense_assign_with(strategy, &zeros, &sym).unwrap();
            assert!(dense.iter().all(|&a| a == 0), "{strategy:?} dense: {dense:?}");
        }
    }

    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    #[test]
    fn avx_backend_is_bit_identical_to_the_portable_path() {
        if !std::arch::is_x86_feature_detected!("avx") {
            return; // nothing to compare on this CPU
        }
        for &d in &[4usize, 8, 12, 16, 24] {
            let (data, mask) = pruned_random(64, d, 2, 4, d as u64);
            let plan = MaskedDistancePlan::new(&mask).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let centers = mvq_tensor::uniform(vec![19, d], -1.0, 1.0, &mut rng);
            for j in 0..64 {
                let row = data.row(j);
                let mm = plan.multiplier_row(j);
                let portable = best_codeword_portable(row, mm, &centers, 19);
                // SAFETY: guarded by the is_x86_feature_detected!("avx")
                // early-return above, so the target-feature contract holds;
                // row/mm/centers all have the same row width d.
                let native = unsafe { avx::best_codeword(row, mm, &centers, 19) };
                assert_eq!(portable, native, "d={d} row={j}");
            }
        }
    }

    #[test]
    fn default_minibatch_size_is_bounded() {
        assert_eq!(default_minibatch_size(10_000, 64), 256);
        assert_eq!(default_minibatch_size(10_000, 4), 64);
        assert_eq!(default_minibatch_size(32, 64), 32);
        assert_eq!(default_minibatch_size(0, 4), 1);
    }
}
