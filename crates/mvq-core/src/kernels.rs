//! Blocked, mask-aware distance/assignment kernels — the hot loop of every
//! clustering-based compressor in the registry.
//!
//! Masked k-means (and the dense k-means the baselines run) spend almost
//! all of their time computing `argmin_i ‖w_j − c_i ∘ bm_j‖²` over all
//! subvectors × codewords. This module provides three interchangeable
//! implementations selected by [`KernelStrategy`]:
//!
//! * **`Naive`** — the per-row reference ([`crate::masked_assign_naive`]
//!   for the masked case, [`dense_assign_naive`] for the dense case). This
//!   is the *oracle*: every other kernel is validated against it, and its
//!   fixed left-to-right f32 accumulation order defines the bit pattern all
//!   strategies must reproduce.
//! * **`Blocked`** — cache-blocked tiles over subvectors × codewords with a
//!   branch-free masked inner loop. The mask is applied through the
//!   existing [`MaskLut`] path: each subvector's M-groups are encoded to
//!   LUT indices once, deduplicated into distinct patterns, and decoded
//!   back into 0.0/1.0 lane multipliers (a [`MaskedDistancePlan`]).
//!   Independent accumulator chains across the codeword tile restore
//!   instruction-level parallelism that the naive kernel's single
//!   accumulator chain forfeits — while each `(subvector, codeword)` pair
//!   still accumulates its lanes in exactly the naive order, so
//!   assignments and SSE are **bit-identical** to the oracle.
//! * **`Minibatch`** — the assignment kernel is the blocked one; the
//!   strategy additionally switches the k-means *loop* to per-iteration
//!   sampled minibatches (see [`crate::masked_kmeans_minibatch`]).
//!
//! ## Why `c[t] * multiplier[t]` is bit-identical to the branchy oracle
//!
//! For a kept lane the multiplier is `1.0` and `c * 1.0 == c` bitwise. For
//! a pruned lane the multiplier is `0.0` and `c * 0.0` is `±0.0`; the
//! subtraction `w − ±0.0` can then differ from the oracle's `w − 0.0` only
//! in the sign of a zero, and squaring erases that sign. Every term added
//! to the accumulator is therefore bit-equal to the oracle's term, and the
//! terms are added in the same order.
//!
//! ## Validation convention
//!
//! New kernels must not reach the registry until they pass the
//! `tests/properties.rs` harness: exact assignment equality and 0-ULP SSE
//! equality against the naive oracle over randomized shapes, masks and
//! seeds, in both debug and `--release` builds (the release run is what
//! catches fast-math/reassociation regressions).

use mvq_tensor::Tensor;

use crate::error::MvqError;
use crate::mask::NmMask;
use crate::mask_lut::MaskLut;
use crate::masked_kmeans::masked_assign_naive;

/// Which distance/assignment kernel the clustering loops dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelStrategy {
    /// Per-row reference kernels — the oracle all others are tested
    /// against.
    Naive,
    /// Cache-blocked, LUT-masked kernels; bit-identical to `Naive`.
    #[default]
    Blocked,
    /// Blocked kernels plus minibatch-sampled k-means iterations
    /// (deterministic for a fixed seed, not bit-identical to full-batch
    /// runs).
    Minibatch,
}

impl KernelStrategy {
    /// Registry-style name (`naive` / `blocked` / `minibatch`).
    pub fn name(self) -> &'static str {
        match self {
            KernelStrategy::Naive => "naive",
            KernelStrategy::Blocked => "blocked",
            KernelStrategy::Minibatch => "minibatch",
        }
    }
}

/// Rows per tile of the blocked kernels: the row tile's data plus its lane
/// multipliers stay resident in L1 while a codeword tile streams past.
const ROW_TILE: usize = 64;
/// Codewords per tile; `CENTER_TILE × d` f32 lanes is well under L1 even
/// at d = 64.
const CENTER_TILE: usize = 16;
/// Accumulator chains kept in flight per row of a tile (ILP width).
const LANES: usize = 4;

/// Precomputed mask state for the blocked kernels: every subvector's
/// M-groups encoded through the [`MaskLut`], deduplicated into distinct
/// row patterns, and decoded back into f32 lane multipliers.
#[derive(Debug, Clone)]
pub struct MaskedDistancePlan {
    d: usize,
    /// Pattern id per subvector.
    pattern_of: Vec<u32>,
    /// `[n_patterns × d]` row-major 0.0/1.0 multipliers.
    multipliers: Vec<f32>,
}

impl MaskedDistancePlan {
    /// Builds the plan for `mask` by round-tripping every M-group through
    /// the [`MaskLut`] encoder — the same compact-index path the simulated
    /// hardware weight loader uses.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the mask's N:M pair cannot
    /// form a LUT (propagated from [`MaskLut::new`]).
    pub fn new(mask: &NmMask) -> Result<MaskedDistancePlan, MvqError> {
        let (ng, d, m) = (mask.ng(), mask.d(), mask.m());
        let lut = MaskLut::new(mask.keep_n(), m)?;
        let groups = d / m;
        // Encode each row's groups to LUT indices; the index vector is the
        // dedup key, so identical mask rows share one multiplier pattern.
        let mut pattern_of = Vec::with_capacity(ng);
        let mut multipliers: Vec<f32> = Vec::new();
        let mut lookup: std::collections::HashMap<Vec<u32>, u32> = std::collections::HashMap::new();
        for j in 0..ng {
            let row = mask.row(j);
            let mut key = Vec::with_capacity(groups);
            for g in 0..groups {
                key.push(lut.encode(&row[g * m..(g + 1) * m])?);
            }
            let next = (multipliers.len() / d.max(1)) as u32;
            let id = *lookup.entry(key.clone()).or_insert_with(|| {
                // decode back through the LUT so the multipliers come from
                // the same table the hardware loader reads
                for &idx in &key {
                    let bits = lut.decode(idx).expect("encoded above");
                    multipliers.extend(bits.iter().map(|&b| if b { 1.0 } else { 0.0 }));
                }
                next
            });
            pattern_of.push(id);
        }
        Ok(MaskedDistancePlan { d, pattern_of, multipliers })
    }

    /// Number of distinct mask patterns across the subvectors.
    pub fn pattern_count(&self) -> usize {
        self.multipliers.len().checked_div(self.d).unwrap_or(0)
    }

    /// The dense "plan": one all-ones pattern shared by every subvector.
    /// `c * 1.0` is bitwise `c`, so the masked kernels run unmasked data
    /// with zero divergence from [`dense_assign_naive`] — the dense and
    /// masked blocked kernels are one implementation.
    pub(crate) fn dense(d: usize) -> MaskedDistancePlan {
        MaskedDistancePlan { d, pattern_of: Vec::new(), multipliers: vec![1.0; d] }
    }

    /// The 0.0/1.0 lane multipliers for subvector `j`.
    #[inline]
    pub(crate) fn multiplier_row(&self, j: usize) -> &[f32] {
        let p = self.pattern_of.get(j).map_or(0, |&p| p as usize);
        &self.multipliers[p * self.d..(p + 1) * self.d]
    }
}

fn validate_assign_inputs(
    data: &Tensor,
    centers: &Tensor,
    mask: Option<&NmMask>,
) -> Result<(usize, usize, usize), MvqError> {
    if data.rank() != 2 || data.numel() == 0 {
        return Err(MvqError::InvalidConfig(format!(
            "assignment kernels expect a non-empty [NG, d] matrix, got {:?}",
            data.dims()
        )));
    }
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    if centers.rank() != 2 || centers.dims()[0] == 0 || centers.dims()[1] != d {
        return Err(MvqError::InvalidConfig(format!(
            "centers {:?} do not match data [{ng}, {d}]",
            centers.dims()
        )));
    }
    if let Some(mask) = mask {
        if mask.ng() != ng || mask.d() != d {
            return Err(MvqError::InvalidConfig(format!(
                "mask [{}, {}] does not match data [{ng}, {d}]",
                mask.ng(),
                mask.d()
            )));
        }
    }
    Ok((ng, d, centers.dims()[0]))
}

/// Masked nearest-codeword assignment via the kernel selected by
/// `strategy` (`Minibatch` uses the blocked kernel — minibatching applies
/// to the k-means loop, not to a single assignment pass).
///
/// The bit-identical guarantee assumes finite codeword values: a ±inf/NaN
/// codeword lane that the mask prunes contributes `NaN` under the blocked
/// kernel's `c * 0.0` multiplier but `0.0` under the oracle's branch, so
/// the strategies may then disagree on that codeword. Every codebook this
/// crate produces is finite; shapes are validated here, finiteness is not.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for empty data, empty codebooks, or
/// mask/data/center shape mismatches.
pub fn masked_assign_with(
    strategy: KernelStrategy,
    data: &Tensor,
    mask: &NmMask,
    centers: &Tensor,
) -> Result<Vec<u32>, MvqError> {
    validate_assign_inputs(data, centers, Some(mask))?;
    match strategy {
        KernelStrategy::Naive => Ok(masked_assign_naive(data, mask, centers)),
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            let plan = MaskedDistancePlan::new(mask)?;
            let mut assign = vec![0u32; data.dims()[0]];
            masked_assign_blocked_into(data, &plan, centers, &mut assign);
            Ok(assign)
        }
    }
}

/// Masked SSE `Σ_j ‖w_j − c_{a_j} ∘ bm_j‖²` via the kernel selected by
/// `strategy`; all strategies are 0-ULP identical (f64 accumulation in row
/// order).
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] on shape mismatches or assignments
/// out of range.
pub fn masked_sse_with(
    strategy: KernelStrategy,
    data: &Tensor,
    mask: &NmMask,
    centers: &Tensor,
    assign: &[u32],
) -> Result<f32, MvqError> {
    let (ng, _, k) = validate_assign_inputs(data, centers, Some(mask))?;
    if assign.len() != ng {
        return Err(MvqError::InvalidConfig(format!(
            "{} assignments for {ng} subvectors",
            assign.len()
        )));
    }
    if assign.iter().any(|&a| a as usize >= k) {
        return Err(MvqError::InvalidConfig(format!("assignment out of range for k = {k}")));
    }
    match strategy {
        KernelStrategy::Naive => {
            Ok(crate::masked_kmeans::masked_sse_naive(data, mask, centers, assign))
        }
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            let plan = MaskedDistancePlan::new(mask)?;
            Ok(masked_sse_blocked(data, &plan, centers, assign))
        }
    }
}

/// One masked assignment pass writing into `assign`; returns the number of
/// changed assignments. Shapes must be pre-validated (the k-means loops
/// own validation); `plan` is only required — and only read — for the
/// blocked strategies.
pub(crate) fn masked_assign_step(
    strategy: KernelStrategy,
    data: &Tensor,
    mask: &NmMask,
    plan: Option<&MaskedDistancePlan>,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    match strategy {
        KernelStrategy::Naive => {
            let fresh = masked_assign_naive(data, mask, centers);
            let mut changed = 0;
            for (slot, new) in assign.iter_mut().zip(fresh) {
                if *slot != new {
                    *slot = new;
                    changed += 1;
                }
            }
            changed
        }
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            let plan = plan.expect("blocked strategies require a mask plan");
            masked_assign_blocked_into(data, plan, centers, assign)
        }
    }
}

/// The blocked masked-assignment kernel.
///
/// Tiles `ROW_TILE` subvectors × `CENTER_TILE` codewords so a codeword
/// tile stays L1-resident across the row tile, runs `LANES` independent
/// accumulator chains per row for ILP, and applies the mask branch-free
/// through the plan's LUT-decoded multipliers. Codewords are visited in
/// ascending index within and across tiles, and each `(j, i)` distance
/// accumulates lanes left-to-right, so the result is bit-identical to
/// [`masked_assign_naive`] (ties break to the lowest index in both).
pub(crate) fn masked_assign_blocked_into(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut changed = 0usize;
    let mut dist = [0.0f32; CENTER_TILE];
    for row0 in (0..ng).step_by(ROW_TILE) {
        let row1 = (row0 + ROW_TILE).min(ng);
        let mut best = [0u32; ROW_TILE];
        let mut best_v = [f32::INFINITY; ROW_TILE];
        for c0 in (0..k).step_by(CENTER_TILE) {
            let c1 = (c0 + CENTER_TILE).min(k);
            for j in row0..row1 {
                let row = data.row(j);
                let mm = plan.multiplier_row(j);
                // LANES independent accumulator chains: each codeword owns
                // one accumulator, and each accumulator adds its lane terms
                // in ascending t — the oracle's exact order per codeword.
                let mut i = c0;
                while i + LANES <= c1 {
                    let c_a = centers.row(i);
                    let c_b = centers.row(i + 1);
                    let c_c = centers.row(i + 2);
                    let c_d = centers.row(i + 3);
                    let (mut acc_a, mut acc_b, mut acc_c, mut acc_d) =
                        (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    for t in 0..d {
                        let (w, m) = (row[t], mm[t]);
                        let e_a = w - c_a[t] * m;
                        let e_b = w - c_b[t] * m;
                        let e_c = w - c_c[t] * m;
                        let e_d = w - c_d[t] * m;
                        acc_a += e_a * e_a;
                        acc_b += e_b * e_b;
                        acc_c += e_c * e_c;
                        acc_d += e_d * e_d;
                    }
                    dist[i - c0] = acc_a;
                    dist[i + 1 - c0] = acc_b;
                    dist[i + 2 - c0] = acc_c;
                    dist[i + 3 - c0] = acc_d;
                    i += LANES;
                }
                while i < c1 {
                    let c = centers.row(i);
                    let mut acc = 0.0f32;
                    for t in 0..d {
                        let e = row[t] - c[t] * mm[t];
                        acc += e * e;
                    }
                    dist[i - c0] = acc;
                    i += 1;
                }
                // compare in ascending codeword order: strict `<` keeps the
                // lowest index on ties, matching the oracle
                let jj = j - row0;
                for i in c0..c1 {
                    let v = dist[i - c0];
                    if v < best_v[jj] {
                        best_v[jj] = v;
                        best[jj] = i as u32;
                    }
                }
            }
        }
        for j in row0..row1 {
            let b = best[j - row0];
            if assign[j] != b {
                assign[j] = b;
                changed += 1;
            }
        }
    }
    changed
}

/// Blocked masked SSE: a single f64 accumulator visited in exactly the
/// naive order (row-major, lanes ascending), with the branch-free
/// multiplier inner loop — 0 ULP from the naive reference.
pub(crate) fn masked_sse_blocked(
    data: &Tensor,
    plan: &MaskedDistancePlan,
    centers: &Tensor,
    assign: &[u32],
) -> f32 {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let mut sse = 0.0f64;
    for j in 0..ng {
        let row = data.row(j);
        let mm = plan.multiplier_row(j);
        let c = centers.row(assign[j] as usize);
        for t in 0..d {
            let e = row[t] - c[t] * mm[t];
            sse += (e * e) as f64;
        }
    }
    sse as f32
}

/// Dense (unmasked) per-row reference assignment — the oracle for the
/// dense kernels, O(NG·k·d) with fixed left-to-right accumulation.
pub fn dense_assign_naive(data: &Tensor, centers: &Tensor) -> Vec<u32> {
    let ng = data.dims()[0];
    let d = data.dims()[1];
    let k = centers.dims()[0];
    let mut assign = vec![0u32; ng];
    for j in 0..ng {
        let row = data.row(j);
        let mut best = 0usize;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let c = centers.row(i);
            let mut acc = 0.0f32;
            for t in 0..d {
                let e = row[t] - c[t];
                acc += e * e;
            }
            if acc < best_v {
                best_v = acc;
                best = i;
            }
        }
        assign[j] = best as u32;
    }
    assign
}

/// Dense nearest-codeword assignment via the kernel selected by
/// `strategy`.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for empty data, empty codebooks, or
/// shape mismatches.
pub fn dense_assign_with(
    strategy: KernelStrategy,
    data: &Tensor,
    centers: &Tensor,
) -> Result<Vec<u32>, MvqError> {
    validate_assign_inputs(data, centers, None)?;
    let mut assign = vec![0u32; data.dims()[0]];
    dense_assign_step(strategy, data, centers, &mut assign);
    Ok(assign)
}

/// One dense assignment pass writing into `assign`; returns the number of
/// changed assignments.
pub(crate) fn dense_assign_step(
    strategy: KernelStrategy,
    data: &Tensor,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    match strategy {
        KernelStrategy::Naive => {
            let fresh = dense_assign_naive(data, centers);
            let mut changed = 0;
            for (slot, new) in assign.iter_mut().zip(fresh) {
                if *slot != new {
                    *slot = new;
                    changed += 1;
                }
            }
            changed
        }
        KernelStrategy::Blocked | KernelStrategy::Minibatch => {
            dense_assign_blocked_into(data, centers, assign)
        }
    }
}

/// Dense blocked assignment: the masked blocked kernel driven by the
/// all-ones [`MaskedDistancePlan::dense`] plan. `c * 1.0` is bitwise `c`
/// (for every value, including ±0, infinities and NaN), so this is
/// bit-identical to [`dense_assign_naive`] while keeping a single copy of
/// the tiling/ILP logic under the oracle harness.
pub(crate) fn dense_assign_blocked_into(
    data: &Tensor,
    centers: &Tensor,
    assign: &mut [u32],
) -> usize {
    let plan = MaskedDistancePlan::dense(data.dims()[1]);
    masked_assign_blocked_into(data, &plan, centers, assign)
}

/// Default minibatch size for [`KernelStrategy::Minibatch`] dispatch:
/// `max(4k, 64)` rows, capped at the dataset — enough samples per batch to
/// touch every codeword a few times while keeping per-iteration cost far
/// below a full pass.
pub fn default_minibatch_size(ng: usize, k: usize) -> usize {
    (4 * k).max(64).min(ng.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::prune_matrix_nm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pruned_random(ng: usize, d: usize, n: usize, m: usize, seed: u64) -> (Tensor, NmMask) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq_tensor::uniform(vec![ng, d], -1.0, 1.0, &mut rng);
        prune_matrix_nm(&w, n, m).unwrap()
    }

    #[test]
    fn blocked_matches_naive_across_tile_boundaries() {
        // sizes straddling ROW_TILE / CENTER_TILE / LANES edges
        for &(ng, k) in &[(1usize, 1usize), (63, 15), (64, 16), (65, 17), (130, 37)] {
            let (data, mask) = pruned_random(ng, 8, 2, 4, ng as u64 + k as u64);
            let mut rng = StdRng::seed_from_u64(9);
            let centers = mvq_tensor::uniform(vec![k, 8], -1.0, 1.0, &mut rng);
            let naive = masked_assign_naive(&data, &mask, &centers);
            let blocked =
                masked_assign_with(KernelStrategy::Blocked, &data, &mask, &centers).unwrap();
            assert_eq!(naive, blocked, "ng={ng} k={k}");
        }
    }

    #[test]
    fn dense_blocked_matches_dense_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = mvq_tensor::uniform(vec![100, 12], -1.0, 1.0, &mut rng);
        let centers = mvq_tensor::uniform(vec![21, 12], -1.0, 1.0, &mut rng);
        let naive = dense_assign_naive(&data, &centers);
        let blocked = dense_assign_with(KernelStrategy::Blocked, &data, &centers).unwrap();
        assert_eq!(naive, blocked);
    }

    #[test]
    fn plan_dedups_patterns_and_uses_lut() {
        let bits = [true, true, false, false].repeat(10);
        let mask = NmMask::from_bits(10, 4, 2, 4, bits).unwrap();
        let plan = MaskedDistancePlan::new(&mask).unwrap();
        assert_eq!(plan.pattern_count(), 1);
        assert_eq!(plan.multiplier_row(7), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn checked_entry_points_validate() {
        let (data, mask) = pruned_random(8, 4, 2, 4, 0);
        let centers = Tensor::zeros(vec![3, 4]);
        // empty codebook
        let empty = Tensor::zeros(vec![0, 4]);
        assert!(masked_assign_with(KernelStrategy::Blocked, &data, &mask, &empty).is_err());
        // center d mismatch
        let wrong_d = Tensor::zeros(vec![3, 8]);
        assert!(masked_assign_with(KernelStrategy::Blocked, &data, &mask, &wrong_d).is_err());
        // mask mismatch
        let (_, other) = pruned_random(4, 4, 2, 4, 1);
        assert!(masked_assign_with(KernelStrategy::Blocked, &data, &other, &centers).is_err());
        // sse: assignment out of range
        let err = masked_sse_with(KernelStrategy::Blocked, &data, &mask, &centers, &[9; 8]);
        assert!(err.is_err());
        // sse: wrong assignment length
        let err = masked_sse_with(KernelStrategy::Naive, &data, &mask, &centers, &[0; 3]);
        assert!(err.is_err());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(KernelStrategy::default(), KernelStrategy::Blocked);
        assert_eq!(KernelStrategy::Naive.name(), "naive");
        assert_eq!(KernelStrategy::Blocked.name(), "blocked");
        assert_eq!(KernelStrategy::Minibatch.name(), "minibatch");
    }

    #[test]
    fn default_minibatch_size_is_bounded() {
        assert_eq!(default_minibatch_size(10_000, 64), 256);
        assert_eq!(default_minibatch_size(10_000, 4), 64);
        assert_eq!(default_minibatch_size(32, 64), 32);
        assert_eq!(default_minibatch_size(0, 4), 1);
    }
}
