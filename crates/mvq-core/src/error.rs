use std::error::Error;
use std::fmt;

use mvq_nn::NnError;
use mvq_tensor::TensorError;

/// Error type for the MVQ compression pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvqError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A model forward/backward pass failed.
    Nn(NnError),
    /// A configuration parameter was invalid.
    InvalidConfig(String),
    /// A weight tensor cannot be grouped with the requested strategy.
    IncompatibleShape {
        /// The offending dims.
        dims: Vec<usize>,
        /// Why grouping failed.
        detail: String,
    },
    /// A serialized artifact blob could not be decoded (truncation, bad
    /// magic, unsupported version, checksum mismatch, or inconsistent
    /// payload fields).
    Codec(String),
}

impl fmt::Display for MvqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvqError::Tensor(e) => write!(f, "tensor error: {e}"),
            MvqError::Nn(e) => write!(f, "model error: {e}"),
            MvqError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MvqError::IncompatibleShape { dims, detail } => {
                write!(f, "cannot group weight of dims {dims:?}: {detail}")
            }
            MvqError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl Error for MvqError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MvqError::Tensor(e) => Some(e),
            MvqError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for MvqError {
    fn from(e: TensorError) -> Self {
        MvqError::Tensor(e)
    }
}

impl From<NnError> for MvqError {
    fn from(e: NnError) -> Self {
        MvqError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let te = TensorError::InvalidArgument("x".into());
        let e: MvqError = te.into();
        assert!(Error::source(&e).is_some());
        let ne = NnError::NoForwardCache("conv");
        let e: MvqError = ne.into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("conv"));
    }

    #[test]
    fn display_is_nonempty() {
        let e = MvqError::IncompatibleShape { dims: vec![3, 3], detail: "no".into() };
        assert!(e.to_string().contains("[3, 3]"));
    }
}
