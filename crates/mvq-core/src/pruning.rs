//! N:M magnitude pruning (paper §4.3) and sparse fine-tuning (§6.2).
//!
//! Within every consecutive group of M weights of a subvector, the N
//! largest-magnitude weights are kept and the rest zeroed. The sparse model
//! is then fine-tuned, either with a frozen mask (ASP, used by the paper
//! for detection/segmentation) or with the mask re-evaluated every step and
//! a sparse-refining decay on pruned weights (SR-STE, used for
//! classification).

use mvq_nn::data::SyntheticClassification;
use mvq_nn::layers::Sequential;
use mvq_nn::loss::cross_entropy;
use mvq_nn::optim::Optimizer;
use mvq_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::MvqError;
use crate::grouping::GroupingStrategy;
use crate::mask::{validate_nm, NmMask};

/// How the sparse model is fine-tuned after pruning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneMethod {
    /// ASP: one-shot magnitude mask, frozen during fine-tuning.
    Asp,
    /// SR-STE: the mask is recomputed from the dense shadow weights every
    /// step; pruned weights receive the straight-through gradient plus a
    /// decay `lambda * w` pulling them toward zero.
    SrSte {
        /// Sparse-refinement decay coefficient (the paper of Zhou et al.
        /// uses 2e-4..6e-4).
        lambda: f32,
    },
}

impl PruneMethod {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PruneMethod::Asp => "ASP",
            PruneMethod::SrSte { .. } => "SR-STE",
        }
    }
}

/// Prunes a `[NG, d]` subvector matrix to N:M sparsity by magnitude.
///
/// Returns the pruned matrix (zeros in pruned lanes) and its mask. Ties are
/// broken toward lower indices, making the result deterministic.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] when `d % m != 0`, `keep_n > m`, or
/// the input is not a matrix.
pub fn prune_matrix_nm(
    matrix: &Tensor,
    keep_n: usize,
    m: usize,
) -> Result<(Tensor, NmMask), MvqError> {
    if matrix.rank() != 2 {
        return Err(MvqError::InvalidConfig(format!(
            "pruning expects [NG, d], got {:?}",
            matrix.dims()
        )));
    }
    let (ng, d) = (matrix.dims()[0], matrix.dims()[1]);
    validate_nm(d, keep_n, m)?;
    let mut pruned = matrix.clone();
    let mut bits = vec![false; ng * d];
    for j in 0..ng {
        for g in 0..d / m {
            let start = j * d + g * m;
            let group = &matrix.data()[start..start + m];
            // indices of the top-N magnitudes (stable ordering)
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| {
                group[b].abs().partial_cmp(&group[a].abs()).expect("finite weights").then(a.cmp(&b))
            });
            for &t in order.iter().take(keep_n) {
                bits[start + t] = true;
            }
            for (t, v) in pruned.data_mut()[start..start + m].iter_mut().enumerate() {
                if !bits[start + t] {
                    *v = 0.0;
                }
            }
        }
    }
    let mask = NmMask::from_bits(ng, d, keep_n, m, bits)?;
    Ok((pruned, mask))
}

/// Prunes every compressible conv layer of `model` in place (grouping each
/// weight with `grouping`/`d`, pruning N:M, writing the sparse weight
/// back). Depthwise convs and convs whose shape is incompatible with the
/// grouping are skipped, mirroring the paper (§7.5).
///
/// Returns the per-layer masks, indexed by the conv's depth-first position
/// (`None` for skipped layers).
///
/// # Errors
///
/// Propagates grouping errors other than shape incompatibility.
pub fn prune_model(
    model: &mut Sequential,
    grouping: GroupingStrategy,
    d: usize,
    keep_n: usize,
    m: usize,
) -> Result<Vec<Option<NmMask>>, MvqError> {
    let mut masks: Vec<Option<NmMask>> = Vec::new();
    let mut first_err: Option<MvqError> = None;
    model.visit_convs_mut(&mut |conv| {
        if first_err.is_some() {
            return;
        }
        if conv.is_depthwise() {
            masks.push(None);
            return;
        }
        let weight = conv.weight.value.clone();
        let grouped = match grouping.group(&weight, d) {
            Ok(g) => g,
            Err(MvqError::IncompatibleShape { .. }) => {
                masks.push(None);
                return;
            }
            Err(e) => {
                first_err = Some(e);
                return;
            }
        };
        match prune_matrix_nm(&grouped, keep_n, m) {
            Ok((pruned, mask)) => match grouping.ungroup(&pruned, weight.dims(), d) {
                Ok(w4) => {
                    conv.weight.value = w4;
                    masks.push(Some(mask));
                }
                Err(e) => first_err = Some(e),
            },
            Err(e) => first_err = Some(e),
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(masks),
    }
}

/// Configuration for sparse fine-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseFinetuneConfig {
    /// Pruning schedule (ASP or SR-STE).
    pub method: PruneMethod,
    /// Epochs of sparse fine-tuning.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Grouping used when re-evaluating masks (SR-STE).
    pub grouping: GroupingStrategy,
    /// Subvector length.
    pub d: usize,
    /// Kept weights per group.
    pub keep_n: usize,
    /// Group size.
    pub m: usize,
}

/// Fine-tunes a pruned model while preserving (ASP) or re-learning (SR-STE)
/// its N:M masks. Returns the final per-layer masks.
///
/// SR-STE keeps a *dense shadow* of every compressible conv weight: the
/// forward pass sees the masked weight, the straight-through gradient (plus
/// the `λ·w` sparse-refinement decay on pruned lanes) updates the dense
/// shadow, and the mask is re-evaluated from the shadow each step. On exit
/// the model holds the masked weights.
///
/// # Errors
///
/// Propagates model and pruning errors.
pub fn sparse_finetune<R: Rng>(
    model: &mut Sequential,
    masks: Vec<Option<NmMask>>,
    data: &SyntheticClassification,
    cfg: &SparseFinetuneConfig,
    opt: &mut Optimizer,
    rng: &mut R,
) -> Result<Vec<Option<NmMask>>, MvqError> {
    let mut masks = masks;
    let n = data.n_train();
    let mut order: Vec<usize> = (0..n).collect();
    // dense shadow for SR-STE (starts from the masked weights; revived
    // lanes re-grow from zero through the straight-through gradient)
    let mut shadow: Option<Vec<Tensor>> = match cfg.method {
        PruneMethod::SrSte { .. } => {
            let mut ws = Vec::new();
            model.visit_convs_mut(&mut |conv| ws.push(conv.weight.value.clone()));
            Some(ws)
        }
        PruneMethod::Asp => None,
    };
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch_size).min(n);
            let (xb, yb) = gather(data, &order[start..end]);
            model.zero_grad();
            let logits = model.forward(&xb, true)?;
            let (_, grad) = cross_entropy(&logits, &yb)?;
            model.backward(&grad)?;
            match cfg.method {
                PruneMethod::Asp => {
                    opt.step(model);
                    reapply_masks(model, &masks, cfg)?;
                }
                PruneMethod::SrSte { lambda } => {
                    let ws = shadow.as_mut().expect("shadow initialized for SR-STE");
                    // restore dense shadow so the optimizer updates it
                    let mut idx = 0usize;
                    model.visit_convs_mut(&mut |conv| {
                        conv.weight.value = ws[idx].clone();
                        idx += 1;
                    });
                    apply_srste_decay(model, &masks, cfg, lambda)?;
                    opt.step(model);
                    // capture updated shadow, then re-prune for the next
                    // forward pass
                    let mut idx = 0usize;
                    model.visit_convs_mut(&mut |conv| {
                        ws[idx] = conv.weight.value.clone();
                        idx += 1;
                    });
                    masks = reprune(model, cfg)?;
                }
            }
            start = end;
        }
    }
    Ok(masks)
}

fn gather(data: &SyntheticClassification, idx: &[usize]) -> (Tensor, Vec<usize>) {
    let d = data.train_images.dims();
    let per = d[1] * d[2] * d[3];
    let mut buf = Vec::with_capacity(idx.len() * per);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        buf.extend_from_slice(&data.train_images.data()[i * per..(i + 1) * per]);
        labels.push(data.train_labels[i]);
    }
    (Tensor::from_vec(vec![idx.len(), d[1], d[2], d[3]], buf).expect("sized buffer"), labels)
}

/// Zeroes pruned weights according to fixed masks (ASP step).
fn reapply_masks(
    model: &mut Sequential,
    masks: &[Option<NmMask>],
    cfg: &SparseFinetuneConfig,
) -> Result<(), MvqError> {
    let mut idx = 0usize;
    let mut first_err = None;
    model.visit_convs_mut(&mut |conv| {
        if first_err.is_some() {
            return;
        }
        let mask = match masks.get(idx) {
            Some(Some(m)) => m,
            _ => {
                idx += 1;
                return;
            }
        };
        let weight = conv.weight.value.clone();
        let res = cfg
            .grouping
            .group(&weight, cfg.d)
            .and_then(|g| mask.apply(&g))
            .and_then(|m| cfg.grouping.ungroup(&m, weight.dims(), cfg.d));
        match res {
            Ok(w) => conv.weight.value = w,
            Err(e) => first_err = Some(e),
        }
        idx += 1;
    });
    first_err.map_or(Ok(()), Err)
}

/// Recomputes magnitude masks from current weights (SR-STE step).
fn reprune(
    model: &mut Sequential,
    cfg: &SparseFinetuneConfig,
) -> Result<Vec<Option<NmMask>>, MvqError> {
    prune_model(model, cfg.grouping, cfg.d, cfg.keep_n, cfg.m)
}

/// Adds `lambda * w` to the gradient of currently-pruned weights.
fn apply_srste_decay(
    model: &mut Sequential,
    masks: &[Option<NmMask>],
    cfg: &SparseFinetuneConfig,
    lambda: f32,
) -> Result<(), MvqError> {
    let mut idx = 0usize;
    let mut first_err = None;
    model.visit_convs_mut(&mut |conv| {
        if first_err.is_some() {
            return;
        }
        let mask = match masks.get(idx) {
            Some(Some(m)) => m,
            _ => {
                idx += 1;
                return;
            }
        };
        let weight = conv.weight.value.clone();
        match cfg.grouping.group(&weight, cfg.d) {
            Ok(gw) => {
                let mut ggrad = match cfg.grouping.group(&conv.weight.grad, cfg.d) {
                    Ok(g) => g,
                    Err(e) => {
                        first_err = Some(e);
                        return;
                    }
                };
                for ((g, &w), &kept) in ggrad.data_mut().iter_mut().zip(gw.data()).zip(mask.bits())
                {
                    if !kept {
                        *g += lambda * w;
                    }
                }
                match cfg.grouping.ungroup(&ggrad, weight.dims(), cfg.d) {
                    Ok(g4) => conv.weight.grad = g4,
                    Err(e) => first_err = Some(e),
                }
            }
            Err(e) => first_err = Some(e),
        }
        idx += 1;
    });
    first_err.map_or(Ok(()), Err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_nn::models::tiny_cnn;
    use mvq_nn::optim::OptimizerKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prune_keeps_largest_magnitudes() {
        let m = Tensor::from_vec(vec![1, 4], vec![0.1, -0.9, 0.5, 0.2]).unwrap();
        let (pruned, mask) = prune_matrix_nm(&m, 2, 4).unwrap();
        assert_eq!(pruned.data(), &[0.0, -0.9, 0.5, 0.0]);
        assert_eq!(mask.row(0), &[false, true, true, false]);
    }

    #[test]
    fn prune_multiple_groups() {
        let m =
            Tensor::from_vec(vec![1, 8], vec![1.0, 0.1, 0.2, 0.3, -0.5, 4.0, 0.0, 0.1]).unwrap();
        let (pruned, mask) = prune_matrix_nm(&m, 1, 4).unwrap();
        assert_eq!(pruned.data(), &[1.0, 0.0, 0.0, 0.0, 0.0, 4.0, 0.0, 0.0]);
        assert_eq!(mask.sparsity(), 0.75);
    }

    #[test]
    fn prune_sparsity_matches_ratio() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = mvq_tensor::uniform(vec![32, 16], -1.0, 1.0, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&m, 4, 16).unwrap();
        assert_eq!(pruned.sparsity(), 0.75);
        assert_eq!(mask.sparsity(), 0.75);
        // kept values survive untouched
        for j in 0..32 {
            for t in 0..16 {
                if mask.row(j)[t] {
                    assert_eq!(pruned.at(&[j, t]).unwrap(), m.at(&[j, t]).unwrap());
                }
            }
        }
    }

    #[test]
    fn prune_validates() {
        let m = Tensor::zeros(vec![2, 6]);
        assert!(prune_matrix_nm(&m, 2, 4).is_err(), "d not multiple of m");
        assert!(prune_matrix_nm(&Tensor::zeros(vec![4]), 1, 2).is_err());
        assert!(prune_matrix_nm(&Tensor::zeros(vec![2, 4]), 5, 4).is_err());
    }

    #[test]
    fn prune_model_sparsifies_compressible_convs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = tiny_cnn(4, 8, &mut rng);
        let masks =
            prune_model(&mut model, GroupingStrategy::OutputChannelWise, 16, 4, 16).unwrap();
        assert_eq!(masks.len(), model.num_convs());
        let mut idx = 0;
        model.visit_convs_mut(&mut |conv| {
            if masks[idx].is_some() {
                assert!(
                    conv.weight.value.sparsity() >= 0.74,
                    "conv {idx} sparsity {}",
                    conv.weight.value.sparsity()
                );
            }
            idx += 1;
        });
        // tiny_cnn convs have K=16 and K=32, both groupable at d=16
        assert!(masks.iter().all(|m| m.is_some()));
    }

    #[test]
    fn asp_finetune_preserves_masks() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = SyntheticClassification::generate(3, 32, 8, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        let masks =
            prune_model(&mut model, GroupingStrategy::OutputChannelWise, 16, 8, 16).unwrap();
        let cfg = SparseFinetuneConfig {
            method: PruneMethod::Asp,
            epochs: 1,
            batch_size: 16,
            grouping: GroupingStrategy::OutputChannelWise,
            d: 16,
            keep_n: 8,
            m: 16,
        };
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.05, 0.9, 0.0));
        let out_masks =
            sparse_finetune(&mut model, masks.clone(), &data, &cfg, &mut opt, &mut rng).unwrap();
        // ASP: masks unchanged, weights still sparse
        for (a, b) in masks.iter().zip(&out_masks) {
            assert_eq!(
                a.as_ref().map(|m| m.bits().to_vec()),
                b.as_ref().map(|m| m.bits().to_vec())
            );
        }
        model.visit_convs_mut(&mut |conv| {
            assert!(conv.weight.value.sparsity() >= 0.49);
        });
    }

    #[test]
    fn srste_finetune_keeps_nm_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = SyntheticClassification::generate(3, 32, 8, 8, &mut rng);
        let mut model = tiny_cnn(3, 8, &mut rng);
        let masks =
            prune_model(&mut model, GroupingStrategy::OutputChannelWise, 16, 8, 16).unwrap();
        let cfg = SparseFinetuneConfig {
            method: PruneMethod::SrSte { lambda: 2e-4 },
            epochs: 1,
            batch_size: 16,
            grouping: GroupingStrategy::OutputChannelWise,
            d: 16,
            keep_n: 8,
            m: 16,
        };
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.05, 0.9, 0.0));
        let out_masks =
            sparse_finetune(&mut model, masks, &data, &cfg, &mut opt, &mut rng).unwrap();
        // N:M structure still holds (mask may have moved)
        for m in out_masks.iter().flatten() {
            assert_eq!(m.keep_n(), 8);
            assert_eq!(m.m(), 16);
        }
        model.visit_convs_mut(&mut |conv| {
            assert!(conv.weight.value.sparsity() >= 0.49);
        });
    }

    #[test]
    fn method_names() {
        assert_eq!(PruneMethod::Asp.name(), "ASP");
        assert_eq!(PruneMethod::SrSte { lambda: 1e-4 }.name(), "SR-STE");
    }
}
