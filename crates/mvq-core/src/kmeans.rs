//! Standard k-means clustering (paper §3) with k-means++ initialization,
//! optional per-subvector importance weights (used by the BGD baseline),
//! and the factored-distance assignment step
//! `‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²` computed via one GEMM per iteration.

use mvq_tensor::{matmul_transpose_b, Tensor};
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;

/// k-means hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansConfig {
    /// Number of codewords requested. Clamped to the number of subvectors
    /// when the data is smaller (small layers under layerwise clustering).
    pub k: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when fewer than `tol_frac × NG` assignments change — the paper
    /// uses 0.1 %.
    pub tol_frac: f64,
}

impl KmeansConfig {
    /// Config with the paper's defaults (`max_iters` 50, tol 0.1 %).
    pub fn new(k: usize) -> KmeansConfig {
        KmeansConfig { k, max_iters: 50, tol_frac: 0.001 }
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// The learned codebook (`k_eff × d`).
    pub codebook: Codebook,
    /// Per-subvector assignments.
    pub assignments: Assignments,
    /// Final sum of squared errors.
    pub sse: f32,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs (optionally weighted) k-means over the rows of `data` (`[NG, d]`).
///
/// When `row_weights` is given, the centroid update is the weighted mean —
/// the mechanism the BGD baseline uses to emphasise activation-important
/// subvectors.
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for empty data, `k == 0`, or
/// mismatched `row_weights`.
pub fn kmeans<R: Rng>(
    data: &Tensor,
    cfg: &KmeansConfig,
    row_weights: Option<&[f32]>,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, _d) = check_data(data, cfg.k)?;
    if let Some(w) = row_weights {
        if w.len() != ng {
            return Err(MvqError::InvalidConfig(format!(
                "{} row weights for {ng} subvectors",
                w.len()
            )));
        }
    }
    let k = cfg.k.min(ng);
    let mut centers = kmeanspp_init(data, k, rng);
    let mut assign = vec![0u32; ng];
    let mut iterations = 0;
    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        let changed = assign_step(data, &centers, &mut assign);
        update_step(data, &mut centers, &assign, row_weights, rng);
        if (changed as f64) < cfg.tol_frac * ng as f64 {
            break;
        }
    }
    // final assignment against the final centers
    assign_step(data, &centers, &mut assign);
    let sse = sse_of(data, &centers, &assign);
    let codebook = Codebook::new(centers)?;
    let assignments = Assignments::new(assign, k)?;
    Ok(KmeansResult { codebook, assignments, sse, iterations })
}

pub(crate) fn check_data(data: &Tensor, k: usize) -> Result<(usize, usize), MvqError> {
    if data.rank() != 2 || data.numel() == 0 {
        return Err(MvqError::InvalidConfig(format!(
            "clustering expects a non-empty [NG, d] matrix, got {:?}",
            data.dims()
        )));
    }
    if k == 0 {
        return Err(MvqError::InvalidConfig("k must be positive".into()));
    }
    Ok((data.dims()[0], data.dims()[1]))
}

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest chosen center.
pub(crate) fn kmeanspp_init<R: Rng>(data: &Tensor, k: usize, rng: &mut R) -> Tensor {
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    let mut centers = Tensor::zeros(vec![k, d]);
    let first = rng.gen_range(0..ng);
    centers.row_mut(0).copy_from_slice(data.row(first));
    let mut best_d2 = vec![f32::INFINITY; ng];
    for c in 1..k {
        let prev = centers.row(c - 1).to_vec();
        for j in 0..ng {
            let d2 = sq_dist(data.row(j), &prev);
            if d2 < best_d2[j] {
                best_d2[j] = d2;
            }
        }
        let total: f64 = best_d2.iter().map(|&x| x as f64).sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..ng)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = ng - 1;
            for (j, &x) in best_d2.iter().enumerate() {
                target -= x as f64;
                if target <= 0.0 {
                    chosen = j;
                    break;
                }
            }
            chosen
        };
        centers.row_mut(c).copy_from_slice(data.row(pick));
    }
    centers
}

/// One assignment pass; returns the number of changed assignments.
pub(crate) fn assign_step(data: &Tensor, centers: &Tensor, assign: &mut [u32]) -> usize {
    let (ng, _) = (data.dims()[0], data.dims()[1]);
    let k = centers.dims()[0];
    // cross term: [ng, k]
    let xc = matmul_transpose_b(data, centers).expect("shapes validated by caller");
    let cnorm: Vec<f32> = (0..k).map(|i| centers.row(i).iter().map(|&v| v * v).sum()).collect();
    let mut changed = 0usize;
    for j in 0..ng {
        let row = xc.row(j);
        let mut best = 0usize;
        let mut best_v = f32::INFINITY;
        for i in 0..k {
            let v = cnorm[i] - 2.0 * row[i];
            if v < best_v {
                best_v = v;
                best = i;
            }
        }
        if assign[j] != best as u32 {
            assign[j] = best as u32;
            changed += 1;
        }
    }
    changed
}

/// One (weighted) centroid-update pass, with empty-cluster reseeding.
fn update_step<R: Rng>(
    data: &Tensor,
    centers: &mut Tensor,
    assign: &[u32],
    row_weights: Option<&[f32]>,
    rng: &mut R,
) {
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    let k = centers.dims()[0];
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0.0f64; k];
    for j in 0..ng {
        let w = row_weights.map_or(1.0, |ws| ws[j] as f64);
        let i = assign[j] as usize;
        counts[i] += w;
        let row = data.row(j);
        for t in 0..d {
            sums[i * d + t] += w * row[t] as f64;
        }
    }
    for i in 0..k {
        if counts[i] > 0.0 {
            let dst = centers.row_mut(i);
            for t in 0..d {
                dst[t] = (sums[i * d + t] / counts[i]) as f32;
            }
        } else {
            // empty cluster: reseed at a random subvector
            let j = rng.gen_range(0..ng);
            centers.row_mut(i).copy_from_slice(data.row(j));
        }
    }
}

pub(crate) fn sse_of(data: &Tensor, centers: &Tensor, assign: &[u32]) -> f32 {
    let ng = data.dims()[0];
    let mut sse = 0.0f64;
    for j in 0..ng {
        sse += sq_dist(data.row(j), centers.row(assign[j] as usize)) as f64;
    }
    sse as f32
}

pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_data() -> Tensor {
        // 20 points near (0,0), 20 near (10,10)
        let mut data = Vec::new();
        for i in 0..20 {
            let e = (i as f32) * 0.01;
            data.extend_from_slice(&[e, -e]);
        }
        for i in 0..20 {
            let e = (i as f32) * 0.01;
            data.extend_from_slice(&[10.0 + e, 10.0 - e]);
        }
        Tensor::from_vec(vec![40, 2], data).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let res = kmeans(&two_blob_data(), &KmeansConfig::new(2), None, &mut rng).unwrap();
        assert_eq!(res.codebook.k(), 2);
        assert!(res.sse < 0.5, "sse {}", res.sse);
        // all points in a blob share an assignment
        let a = res.assignments.indices();
        assert!(a[..20].iter().all(|&x| x == a[0]));
        assert!(a[20..].iter().all(|&x| x == a[20]));
        assert_ne!(a[0], a[20]);
    }

    #[test]
    fn k_equals_ng_gives_zero_sse() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Tensor::from_vec(vec![4, 2], vec![0., 0., 1., 1., 2., 2., 3., 3.]).unwrap();
        let res = kmeans(&data, &KmeansConfig::new(4), None, &mut rng).unwrap();
        assert!(res.sse < 1e-9);
    }

    #[test]
    fn k_clamped_to_ng() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Tensor::from_vec(vec![3, 2], vec![0., 0., 1., 1., 2., 2.]).unwrap();
        let res = kmeans(&data, &KmeansConfig::new(10), None, &mut rng).unwrap();
        assert_eq!(res.codebook.k(), 3);
    }

    #[test]
    fn more_codewords_no_worse_sse() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = mvq_tensor::uniform(vec![200, 8], -1.0, 1.0, &mut rng);
        let sse4 = kmeans(&data, &KmeansConfig::new(4), None, &mut rng).unwrap().sse;
        let sse32 = kmeans(&data, &KmeansConfig::new(32), None, &mut rng).unwrap().sse;
        assert!(sse32 < sse4, "{sse32} !< {sse4}");
    }

    #[test]
    fn weighted_update_biases_centroid() {
        // two points; weight one of them 100x: centroid lands near it
        let data = Tensor::from_vec(vec![2, 1], vec![0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = KmeansConfig { k: 1, max_iters: 5, tol_frac: 0.0 };
        let res = kmeans(&data, &cfg, Some(&[1.0, 100.0]), &mut rng).unwrap();
        let c = res.codebook.codeword(0)[0];
        assert!(c > 0.9, "weighted centroid {c}");
    }

    #[test]
    fn validates_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = Tensor::zeros(vec![4, 2]);
        assert!(kmeans(&data, &KmeansConfig::new(0), None, &mut rng).is_err());
        assert!(kmeans(&Tensor::zeros(vec![4]), &KmeansConfig::new(2), None, &mut rng).is_err());
        assert!(kmeans(&data, &KmeansConfig::new(2), Some(&[1.0]), &mut rng).is_err());
    }

    #[test]
    fn sse_decreases_monotonically_enough() {
        // run 1 iter vs many iters; SSE should not increase
        let mut rng = StdRng::seed_from_u64(6);
        let data = mvq_tensor::uniform(vec![100, 4], -1.0, 1.0, &mut rng);
        let one = kmeans(
            &data,
            &KmeansConfig { k: 8, max_iters: 1, tol_frac: 0.0 },
            None,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let many = kmeans(
            &data,
            &KmeansConfig { k: 8, max_iters: 30, tol_frac: 0.0 },
            None,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert!(many.sse <= one.sse + 1e-4, "{} > {}", many.sse, one.sse);
        assert!(many.iterations >= one.iterations);
    }
}
