//! Standard k-means clustering (paper §3) with k-means++ initialization,
//! optional per-subvector importance weights (used by the BGD baseline),
//! and assignment dispatched through the [`crate::kernels`] strategies
//! (naive oracle / cache-blocked / minibatch) selected by
//! [`KmeansConfig::kernel`].

use mvq_tensor::Tensor;
use rand::Rng;

use crate::codebook::{Assignments, Codebook};
use crate::error::MvqError;
use crate::kernels::{default_minibatch_size, dense_assign_step, KernelStrategy};

/// k-means hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansConfig {
    /// Number of codewords requested. Clamped to the number of subvectors
    /// when the data is smaller (small layers under layerwise clustering).
    pub k: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when fewer than `tol_frac × NG` assignments change — the paper
    /// uses 0.1 %.
    pub tol_frac: f64,
    /// Which distance/assignment kernel the clustering loop dispatches to.
    pub kernel: KernelStrategy,
}

impl KmeansConfig {
    /// Config with the paper's defaults (`max_iters` 50, tol 0.1 %) and
    /// the blocked kernel.
    pub fn new(k: usize) -> KmeansConfig {
        KmeansConfig { k, max_iters: 50, tol_frac: 0.001, kernel: KernelStrategy::default() }
    }

    /// Overrides the kernel strategy.
    pub fn with_kernel(mut self, kernel: KernelStrategy) -> KmeansConfig {
        self.kernel = kernel;
        self
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// The learned codebook (`k_eff × d`).
    pub codebook: Codebook,
    /// Per-subvector assignments.
    pub assignments: Assignments,
    /// Final sum of squared errors.
    pub sse: f32,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs (optionally weighted) k-means over the rows of `data` (`[NG, d]`).
///
/// When `row_weights` is given, the centroid update is the weighted mean —
/// the mechanism the BGD baseline uses to emphasise activation-important
/// subvectors. Under [`KernelStrategy::Minibatch`] the loop samples
/// [`default_minibatch_size`] rows per iteration instead of a full pass
/// (deterministic for a fixed seed).
///
/// # Errors
///
/// Returns [`MvqError::InvalidConfig`] for empty data, `k == 0`, or
/// mismatched `row_weights`.
pub fn kmeans<R: Rng>(
    data: &Tensor,
    cfg: &KmeansConfig,
    row_weights: Option<&[f32]>,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, _d) = check_data(data, cfg.k)?;
    if let Some(w) = row_weights {
        if w.len() != ng {
            return Err(MvqError::InvalidConfig(format!(
                "{} row weights for {ng} subvectors",
                w.len()
            )));
        }
    }
    let k = cfg.k.min(ng);
    if cfg.kernel == KernelStrategy::Minibatch {
        return kmeans_minibatch_dense(
            data,
            k,
            cfg.max_iters,
            default_minibatch_size(ng, k),
            row_weights,
            rng,
        );
    }
    let mut centers = kmeanspp_init(data, k, rng);
    let mut assign = vec![0u32; ng];
    let mut iterations = 0;
    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        let changed = dense_assign_step(cfg.kernel, data, &centers, &mut assign);
        update_step(data, &mut centers, &assign, row_weights, rng);
        if (changed as f64) < cfg.tol_frac * ng as f64 {
            break;
        }
    }
    // final assignment against the final centers
    dense_assign_step(cfg.kernel, data, &centers, &mut assign);
    let sse = sse_of(data, &centers, &assign);
    let codebook = Codebook::new(centers)?;
    let assignments = Assignments::new(assign, k)?;
    Ok(KmeansResult { codebook, assignments, sse, iterations })
}

/// Dense minibatch k-means: per-iteration sampled batches with the
/// streaming update `c ← c + w·(x − c)/n` (Sculley 2010), weighted when
/// `row_weights` is given. Final assignment/SSE run over the full data.
fn kmeans_minibatch_dense<R: Rng>(
    data: &Tensor,
    k: usize,
    max_iters: usize,
    batch_size: usize,
    row_weights: Option<&[f32]>,
    rng: &mut R,
) -> Result<KmeansResult, MvqError> {
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    if batch_size == 0 {
        return Err(MvqError::InvalidConfig("minibatch size must be positive".into()));
    }
    let mut centers = kmeanspp_init(data, k, rng);
    let mut mass = vec![0.0f32; k];
    for _ in 0..max_iters {
        for _ in 0..batch_size {
            let j = rng.gen_range(0..ng);
            let row = data.row(j);
            // nearest center for the sampled row (blocked kernel on a
            // 1-row view is just the scalar loop)
            let mut best = 0usize;
            let mut best_v = f32::INFINITY;
            for i in 0..k {
                let c = centers.row(i);
                let mut acc = 0.0f32;
                for t in 0..d {
                    let e = row[t] - c[t];
                    acc += e * e;
                }
                if acc < best_v {
                    best_v = acc;
                    best = i;
                }
            }
            let w = row_weights.map_or(1.0, |ws| ws[j]);
            if w <= 0.0 {
                continue;
            }
            mass[best] += w;
            let lr = w / mass[best];
            let c = centers.row_mut(best);
            for t in 0..d {
                c[t] += lr * (row[t] - c[t]);
            }
        }
    }
    let mut assign = vec![0u32; ng];
    dense_assign_step(KernelStrategy::Blocked, data, &centers, &mut assign);
    let sse = sse_of(data, &centers, &assign);
    Ok(KmeansResult {
        codebook: Codebook::new(centers)?,
        assignments: Assignments::new(assign, k)?,
        sse,
        iterations: max_iters,
    })
}

pub(crate) fn check_data(data: &Tensor, k: usize) -> Result<(usize, usize), MvqError> {
    if data.rank() != 2 || data.numel() == 0 {
        return Err(MvqError::InvalidConfig(format!(
            "clustering expects a non-empty [NG, d] matrix, got {:?}",
            data.dims()
        )));
    }
    if k == 0 {
        return Err(MvqError::InvalidConfig("k must be positive".into()));
    }
    Ok((data.dims()[0], data.dims()[1]))
}

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest chosen center.
pub(crate) fn kmeanspp_init<R: Rng>(data: &Tensor, k: usize, rng: &mut R) -> Tensor {
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    let mut centers = Tensor::zeros(vec![k, d]);
    let first = rng.gen_range(0..ng);
    centers.row_mut(0).copy_from_slice(data.row(first));
    let mut best_d2 = vec![f32::INFINITY; ng];
    for c in 1..k {
        let prev = centers.row(c - 1).to_vec();
        for j in 0..ng {
            let d2 = sq_dist(data.row(j), &prev);
            if d2 < best_d2[j] {
                best_d2[j] = d2;
            }
        }
        let total: f64 = best_d2.iter().map(|&x| x as f64).sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..ng)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = ng - 1;
            for (j, &x) in best_d2.iter().enumerate() {
                target -= x as f64;
                if target <= 0.0 {
                    chosen = j;
                    break;
                }
            }
            chosen
        };
        centers.row_mut(c).copy_from_slice(data.row(pick));
    }
    centers
}

/// One (weighted) centroid-update pass, with empty-cluster reseeding.
fn update_step<R: Rng>(
    data: &Tensor,
    centers: &mut Tensor,
    assign: &[u32],
    row_weights: Option<&[f32]>,
    rng: &mut R,
) {
    let (ng, d) = (data.dims()[0], data.dims()[1]);
    let k = centers.dims()[0];
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0.0f64; k];
    for j in 0..ng {
        let w = row_weights.map_or(1.0, |ws| ws[j] as f64);
        let i = assign[j] as usize;
        counts[i] += w;
        let row = data.row(j);
        for t in 0..d {
            sums[i * d + t] += w * row[t] as f64;
        }
    }
    for i in 0..k {
        if counts[i] > 0.0 {
            let dst = centers.row_mut(i);
            for t in 0..d {
                dst[t] = (sums[i * d + t] / counts[i]) as f32;
            }
        } else {
            // empty cluster: reseed at a random subvector
            let j = rng.gen_range(0..ng);
            centers.row_mut(i).copy_from_slice(data.row(j));
        }
    }
}

pub(crate) fn sse_of(data: &Tensor, centers: &Tensor, assign: &[u32]) -> f32 {
    let ng = data.dims()[0];
    let mut sse = 0.0f64;
    for j in 0..ng {
        sse += sq_dist(data.row(j), centers.row(assign[j] as usize)) as f64;
    }
    sse as f32
}

pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_data() -> Tensor {
        // 20 points near (0,0), 20 near (10,10)
        let mut data = Vec::new();
        for i in 0..20 {
            let e = (i as f32) * 0.01;
            data.extend_from_slice(&[e, -e]);
        }
        for i in 0..20 {
            let e = (i as f32) * 0.01;
            data.extend_from_slice(&[10.0 + e, 10.0 - e]);
        }
        Tensor::from_vec(vec![40, 2], data).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let res = kmeans(&two_blob_data(), &KmeansConfig::new(2), None, &mut rng).unwrap();
        assert_eq!(res.codebook.k(), 2);
        assert!(res.sse < 0.5, "sse {}", res.sse);
        // all points in a blob share an assignment
        let a = res.assignments.indices();
        assert!(a[..20].iter().all(|&x| x == a[0]));
        assert!(a[20..].iter().all(|&x| x == a[20]));
        assert_ne!(a[0], a[20]);
    }

    #[test]
    fn naive_and_blocked_runs_are_identical() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = mvq_tensor::uniform(vec![200, 8], -1.0, 1.0, &mut rng);
        let run = |kernel| {
            kmeans(
                &data,
                &KmeansConfig::new(17).with_kernel(kernel),
                None,
                &mut StdRng::seed_from_u64(9),
            )
            .unwrap()
        };
        let naive = run(KernelStrategy::Naive);
        let blocked = run(KernelStrategy::Blocked);
        assert_eq!(naive.assignments.indices(), blocked.assignments.indices());
        assert_eq!(naive.codebook.centers().data(), blocked.codebook.centers().data());
        assert_eq!(naive.sse.to_bits(), blocked.sse.to_bits());
    }

    #[test]
    fn minibatch_separates_blobs_deterministically() {
        let cfg = KmeansConfig::new(2).with_kernel(KernelStrategy::Minibatch);
        let run = || kmeans(&two_blob_data(), &cfg, None, &mut StdRng::seed_from_u64(10)).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.assignments.indices(), b.assignments.indices());
        assert_eq!(a.codebook.centers().data(), b.codebook.centers().data());
        assert!(a.sse < 1.0, "minibatch sse {}", a.sse);
    }

    #[test]
    fn k_equals_ng_gives_zero_sse() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Tensor::from_vec(vec![4, 2], vec![0., 0., 1., 1., 2., 2., 3., 3.]).unwrap();
        let res = kmeans(&data, &KmeansConfig::new(4), None, &mut rng).unwrap();
        assert!(res.sse < 1e-9);
    }

    #[test]
    fn k_clamped_to_ng() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Tensor::from_vec(vec![3, 2], vec![0., 0., 1., 1., 2., 2.]).unwrap();
        let res = kmeans(&data, &KmeansConfig::new(10), None, &mut rng).unwrap();
        assert_eq!(res.codebook.k(), 3);
    }

    #[test]
    fn more_codewords_no_worse_sse() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = mvq_tensor::uniform(vec![200, 8], -1.0, 1.0, &mut rng);
        let sse4 = kmeans(&data, &KmeansConfig::new(4), None, &mut rng).unwrap().sse;
        let sse32 = kmeans(&data, &KmeansConfig::new(32), None, &mut rng).unwrap().sse;
        assert!(sse32 < sse4, "{sse32} !< {sse4}");
    }

    #[test]
    fn weighted_update_biases_centroid() {
        // two points; weight one of them 100x: centroid lands near it
        let data = Tensor::from_vec(vec![2, 1], vec![0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = KmeansConfig { k: 1, max_iters: 5, tol_frac: 0.0, ..KmeansConfig::new(1) };
        let res = kmeans(&data, &cfg, Some(&[1.0, 100.0]), &mut rng).unwrap();
        let c = res.codebook.codeword(0)[0];
        assert!(c > 0.9, "weighted centroid {c}");
    }

    #[test]
    fn validates_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = Tensor::zeros(vec![4, 2]);
        assert!(kmeans(&data, &KmeansConfig::new(0), None, &mut rng).is_err());
        assert!(kmeans(&Tensor::zeros(vec![4]), &KmeansConfig::new(2), None, &mut rng).is_err());
        assert!(kmeans(&data, &KmeansConfig::new(2), Some(&[1.0]), &mut rng).is_err());
    }

    #[test]
    fn sse_decreases_monotonically_enough() {
        // run 1 iter vs many iters; SSE should not increase
        let mut rng = StdRng::seed_from_u64(6);
        let data = mvq_tensor::uniform(vec![100, 4], -1.0, 1.0, &mut rng);
        let one = kmeans(
            &data,
            &KmeansConfig { max_iters: 1, tol_frac: 0.0, ..KmeansConfig::new(8) },
            None,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let many = kmeans(
            &data,
            &KmeansConfig { max_iters: 30, tol_frac: 0.0, ..KmeansConfig::new(8) },
            None,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert!(many.sse <= one.sse + 1e-4, "{} > {}", many.sse, one.sse);
        assert!(many.iterations >= one.iterations);
    }
}
