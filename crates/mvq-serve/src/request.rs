//! Typed, construction-validated compression requests.
//!
//! [`CompressionRequest`] is the unit of work [`crate::CompressionService`]
//! accepts. Unlike the v1 [`crate::CompressionJob`] — a bag of strings
//! checked only when a batch ran — a request is validated by
//! [`CompressionRequestBuilder::build`]: the algorithm name is resolved
//! against the pipeline registry, the spec is compiled for that algorithm,
//! and the weight is shape-checked, each failure a typed
//! [`MvqError::InvalidConfig`]. A request that builds cannot fail
//! admission; only the compression itself can still error (per job, as a
//! [`crate::JobError`]).

use std::time::{Duration, Instant};

use mvq_core::pipeline::{by_name, canonical_name, PipelineSpec};
use mvq_core::store::Fnv1a;
use mvq_core::{model_weight_hash, KernelStrategy, MvqError, StreamConfig};
use mvq_nn::Sequential;
use mvq_tensor::Tensor;

use crate::ticket::CancelToken;

/// Scheduling priority of a request. Workers always pop the
/// highest-priority queued job; within one priority, submission order
/// (FIFO) breaks ties.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Run after everything else.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Run before Normal and Low work.
    High,
}

/// How a request interacts with the service's artifact cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Answer from the cache when possible and store fresh results — the
    /// default.
    #[default]
    ReadWrite,
    /// Answer from the cache when possible but never store — useful for
    /// probing without growing a budgeted cache.
    ReadOnly,
    /// Ignore the cache entirely: always compress fresh, store nothing,
    /// and never share another in-flight job's result.
    Bypass,
}

impl CacheMode {
    pub(crate) fn reads_cache(self) -> bool {
        !matches!(self, CacheMode::Bypass)
    }

    pub(crate) fn writes_cache(self) -> bool {
        matches!(self, CacheMode::ReadWrite)
    }

    /// Whether the request may share an identical in-flight job's result.
    /// The executing (first-submitted) job's mode governs cache writes.
    pub(crate) fn dedupes(self) -> bool {
        !matches!(self, CacheMode::Bypass)
    }
}

/// One validated unit of work for [`crate::CompressionService`]: compress
/// `weight` with `algo` under `spec`, at `priority`, interacting with the
/// cache per `cache_mode`.
///
/// Construct through [`CompressionRequest::builder`]; the fields are
/// read-only afterwards so a request in the queue can never be in a state
/// the service did not validate.
#[derive(Debug, Clone)]
pub struct CompressionRequest {
    name: String,
    weight: Tensor,
    algo: &'static str,
    spec: PipelineSpec,
    seed: Option<u64>,
    priority: Priority,
    cache_mode: CacheMode,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl CompressionRequest {
    /// Starts building a request to compress `weight` with the registry
    /// algorithm `algo` (aliases like `vq` are canonicalized at build).
    pub fn builder(
        name: impl Into<String>,
        weight: Tensor,
        algo: impl Into<String>,
    ) -> CompressionRequestBuilder {
        CompressionRequestBuilder {
            name: name.into(),
            weight,
            algo: algo.into(),
            spec: PipelineSpec::default(),
            seed: None,
            priority: Priority::default(),
            cache_mode: CacheMode::default(),
            deadline: None,
            cancel: None,
        }
    }

    /// Caller-chosen label (e.g. a layer name); not part of the identity.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weight tensor to compress.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Canonical registry algorithm name.
    pub fn algo(&self) -> &'static str {
        self.algo
    }

    /// Pipeline hyperparameters.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The pinned RNG seed, if any. `None` means the service derives a
    /// deterministic content seed so identical unseeded requests dedupe
    /// and cache across batches and processes.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Scheduling priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Cache interaction policy.
    pub fn cache_mode(&self) -> CacheMode {
        self.cache_mode
    }

    /// The queue deadline, if any. Not part of the cache identity.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancellation token, if any. Not part of the cache
    /// identity.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The seed this request will actually compress with: the pinned seed
    /// or the content-derived one.
    pub(crate) fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or_else(|| content_seed(&self.weight, &self.spec, self.algo))
    }

    pub(crate) fn into_parts(
        self,
    ) -> (String, Tensor, &'static str, PipelineSpec, Option<Instant>, Option<CancelToken>) {
        (self.name, self.weight, self.algo, self.spec, self.deadline, self.cancel)
    }
}

/// Builder for [`CompressionRequest`]; see [`CompressionRequest::builder`].
#[derive(Debug, Clone)]
pub struct CompressionRequestBuilder {
    name: String,
    weight: Tensor,
    algo: String,
    spec: PipelineSpec,
    seed: Option<u64>,
    priority: Priority,
    cache_mode: CacheMode,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl CompressionRequestBuilder {
    /// Sets the pipeline hyperparameters (default: [`PipelineSpec::default`]).
    pub fn spec(mut self, spec: PipelineSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Overrides the kernel strategy on the spec — a shorthand for
    /// `spec.with_kernel(..)`, so CLI callers can layer `--kernel` on top
    /// of a preset spec.
    pub fn kernel(mut self, kernel: KernelStrategy) -> Self {
        self.spec = self.spec.with_kernel(kernel);
        self
    }

    /// Pins the RNG seed (the seed becomes part of the cache identity).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the scheduling priority (default: [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the cache interaction policy (default: [`CacheMode::ReadWrite`]).
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Sets an absolute queue deadline: a job still queued when `deadline`
    /// passes is dropped at dequeue with
    /// [`crate::JobError::Cancelled`] (`kind:`
    /// [`crate::CancelKind::DeadlineExpired`]) — expired work never
    /// occupies a worker. A job already running is not interrupted.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Shorthand for [`Self::deadline`] at `now + timeout`.
    pub fn deadline_after(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token: cancelling any clone of `token`
    /// while the job is queued drops it at dequeue with
    /// [`crate::JobError::Cancelled`] (`kind:`
    /// [`crate::CancelKind::Explicit`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates and finishes the request.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the name is empty, the
    /// weight has no elements, the algorithm is unknown, or the spec does
    /// not compile for the algorithm (e.g. `d` not a multiple of `m` for
    /// `mvq`).
    pub fn build(self) -> Result<CompressionRequest, MvqError> {
        if self.name.is_empty() {
            return Err(MvqError::InvalidConfig("request name must not be empty".into()));
        }
        if self.weight.numel() == 0 {
            return Err(MvqError::InvalidConfig(format!(
                "request `{}`: weight of dims {:?} has no elements",
                self.name,
                self.weight.dims()
            )));
        }
        let algo = canonical_name(&self.algo).ok_or_else(|| {
            MvqError::InvalidConfig(format!(
                "request `{}`: unknown compressor `{}`",
                self.name, self.algo
            ))
        })?;
        // compiling the compressor front-loads algorithm/spec mismatches
        // (the registry's own validation) to submission time
        by_name(algo, &self.spec)?;
        Ok(CompressionRequest {
            name: self.name,
            weight: self.weight,
            algo,
            spec: self.spec,
            seed: self.seed,
            priority: self.priority,
            cache_mode: self.cache_mode,
            deadline: self.deadline,
            cancel: self.cancel,
        })
    }
}

/// One validated whole-model unit of work for
/// [`crate::CompressionService::submit_model`]: stream-compress every
/// conv of `model` with `algo` under `spec`, spilling each finished layer
/// to the service's cache under the model key's
/// [`layer_key`](mvq_core::store::CacheKey::layer_key) and bounding the
/// in-flight working set by `stream`'s window.
///
/// Model jobs always interact with the cache read-write — the streaming
/// pipeline *is* a cache writer by construction (layers spill as they
/// finish), so there is no [`CacheMode`] knob here. Per-layer progress is
/// observable on the returned [`crate::Ticket::progress`] while the job
/// runs.
#[derive(Debug, Clone)]
pub struct ModelCompressionRequest {
    name: String,
    model: Sequential,
    algo: &'static str,
    spec: PipelineSpec,
    stream: StreamConfig,
    seed: Option<u64>,
    priority: Priority,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl ModelCompressionRequest {
    /// Starts building a request to stream-compress `model` with the
    /// registry algorithm `algo` (aliases canonicalized at build).
    pub fn builder(
        name: impl Into<String>,
        model: Sequential,
        algo: impl Into<String>,
    ) -> ModelCompressionRequestBuilder {
        ModelCompressionRequestBuilder {
            name: name.into(),
            model,
            algo: algo.into(),
            spec: PipelineSpec::default(),
            stream: StreamConfig::default(),
            seed: None,
            priority: Priority::default(),
            deadline: None,
            cancel: None,
        }
    }

    /// Caller-chosen label; not part of the identity.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model whose convs will be streamed.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Canonical registry algorithm name.
    pub fn algo(&self) -> &'static str {
        self.algo
    }

    /// Pipeline hyperparameters.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The streaming window/worker knobs. Not part of the cache identity:
    /// the streamed result is bit-identical across window shapes.
    pub fn stream(&self) -> &StreamConfig {
        &self.stream
    }

    /// The pinned RNG seed, if any (`None`: a deterministic content seed
    /// is derived, as for [`CompressionRequest::seed`]).
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Scheduling priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The queue deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The seed this request will actually compress with.
    pub(crate) fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or_else(|| {
            let mut h = Fnv1a::new();
            h.update(b"mvq.serve.modelseed.v1");
            h.update_u64(model_weight_hash(&self.model));
            h.update_u64(self.spec.fingerprint());
            h.update(self.algo.as_bytes());
            h.finish()
        })
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        String,
        Sequential,
        &'static str,
        PipelineSpec,
        StreamConfig,
        Option<Instant>,
        Option<CancelToken>,
    ) {
        (self.name, self.model, self.algo, self.spec, self.stream, self.deadline, self.cancel)
    }
}

/// Builder for [`ModelCompressionRequest`]; see
/// [`ModelCompressionRequest::builder`].
#[derive(Debug, Clone)]
pub struct ModelCompressionRequestBuilder {
    name: String,
    model: Sequential,
    algo: String,
    spec: PipelineSpec,
    stream: StreamConfig,
    seed: Option<u64>,
    priority: Priority,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl ModelCompressionRequestBuilder {
    /// Sets the pipeline hyperparameters (default: [`PipelineSpec::default`]).
    pub fn spec(mut self, spec: PipelineSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the streaming window/worker knobs (default:
    /// [`StreamConfig::default`]).
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Pins the RNG seed (part of the cache identity).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the scheduling priority (default: [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute queue deadline; semantics as
    /// [`CompressionRequestBuilder::deadline`].
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Shorthand for [`Self::deadline`] at `now + timeout`.
    pub fn deadline_after(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token; semantics as
    /// [`CompressionRequestBuilder::cancel_token`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates and finishes the request.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] when the name is empty, the
    /// model has no conv layers, the algorithm is unknown, or the spec
    /// does not compile for the algorithm.
    pub fn build(self) -> Result<ModelCompressionRequest, MvqError> {
        if self.name.is_empty() {
            return Err(MvqError::InvalidConfig("request name must not be empty".into()));
        }
        let mut convs = 0usize;
        self.model.visit_convs(&mut |_| convs += 1);
        if convs == 0 {
            return Err(MvqError::InvalidConfig(format!(
                "request `{}`: model has no conv layers to compress",
                self.name
            )));
        }
        let algo = canonical_name(&self.algo).ok_or_else(|| {
            MvqError::InvalidConfig(format!(
                "request `{}`: unknown compressor `{}`",
                self.name, self.algo
            ))
        })?;
        by_name(algo, &self.spec)?;
        Ok(ModelCompressionRequest {
            name: self.name,
            model: self.model,
            algo,
            spec: self.spec,
            stream: self.stream,
            seed: self.seed,
            priority: self.priority,
            deadline: self.deadline,
            cancel: self.cancel,
        })
    }
}

/// Deterministic seed for an unseeded request, derived from its content
/// identity — the same weight/spec/algorithm always compresses with the
/// same RNG stream, so unseeded work dedupes and caches across batches
/// and processes. The domain string is pinned: it has encoded the same
/// identity since the v1 batch service, so existing unseeded cache blobs
/// stay addressable.
pub(crate) fn content_seed(weight: &Tensor, spec: &PipelineSpec, canonical_algo: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"mvq.serve.contentseed.v1");
    h.update_u64(mvq_core::weight_hash(weight));
    h.update_u64(spec.fingerprint());
    h.update(canonical_algo.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight() -> Tensor {
        let mut rng = StdRng::seed_from_u64(0);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    #[test]
    fn builder_validates_at_construction() {
        let ok = CompressionRequest::builder("a", weight(), "mvq")
            .spec(PipelineSpec { k: 8, ..PipelineSpec::default() })
            .seed(3)
            .priority(Priority::High)
            .cache_mode(CacheMode::ReadOnly)
            .build()
            .unwrap();
        assert_eq!(ok.algo(), "mvq");
        assert_eq!(ok.seed(), Some(3));
        assert_eq!(ok.priority(), Priority::High);
        assert_eq!(ok.cache_mode(), CacheMode::ReadOnly);

        let unknown = CompressionRequest::builder("a", weight(), "vqgan").build();
        assert!(matches!(unknown, Err(MvqError::InvalidConfig(_))));
        let empty_name = CompressionRequest::builder("", weight(), "mvq").build();
        assert!(matches!(empty_name, Err(MvqError::InvalidConfig(_))));
        let empty_weight =
            CompressionRequest::builder("a", Tensor::from_vec(vec![0, 8], vec![]).unwrap(), "mvq")
                .build();
        assert!(matches!(empty_weight, Err(MvqError::InvalidConfig(_))));
        // spec that cannot compile for mvq: d not a multiple of m
        let bad_spec = CompressionRequest::builder("a", weight(), "mvq")
            .spec(PipelineSpec { d: 6, m: 4, ..PipelineSpec::default() })
            .build();
        assert!(matches!(bad_spec, Err(MvqError::InvalidConfig(_))));
    }

    #[test]
    fn aliases_canonicalize_and_share_content_seeds() {
        let a = CompressionRequest::builder("a", weight(), "vq").build().unwrap();
        let b = CompressionRequest::builder("b", weight(), "vq-a").build().unwrap();
        assert_eq!(a.algo(), "vq-a");
        assert_eq!(a.resolved_seed(), b.resolved_seed());
    }

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }
}
