//! Tickets: per-job result handles, outcomes, cancellation tokens, and
//! typed job errors.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use mvq_core::store::{CacheKey, Persist};
use mvq_core::{CompressedArtifact, ModelArtifacts, MvqError, Progress, ProgressHandle};
use mvq_obs::Trace;

/// A shared cancellation flag for one (or several) submitted jobs.
///
/// Clones share the flag: the network layer keeps one clone per wire
/// request and hands another to the request builder
/// ([`crate::CompressionRequestBuilder::cancel_token`]); cancelling the
/// token marks the job's waiter dead, and the worker pool drops a job
/// whose waiters are all dead **at dequeue** — cancelled work never
/// occupies a worker. A job already running is not interrupted (its
/// result is simply delivered; dedup riders may still want it).
///
/// Cancellation is one-way and idempotent: once cancelled, a token
/// stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Marks the token cancelled. Idempotent; safe to call after the
    /// job completed (the completed result is simply delivered).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Why a queued job was dropped before reaching a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The job's [`CancelToken`] was cancelled (e.g. its network client
    /// disconnected) while the job was still queued.
    Explicit,
    /// The job's deadline passed while it was still queued.
    DeadlineExpired,
}

/// How a job's result is carried to its waiters.
///
/// The hot path is [`Payload::Bytes`]: one validated, encoded `Arc` blob
/// shared by the cache and every rider — a waiter pays for a decode only
/// if it asks for [`JobOutcome::artifact`]. [`Payload::Artifact`] exists
/// for cache-bypassing jobs, whose result was never encoded.
#[derive(Clone)]
pub(crate) enum Payload {
    /// Validated encoded blob bytes, shared zero-copy.
    Bytes(Arc<[u8]>),
    /// A decoded artifact (bypass mode only — nothing was encoded).
    Artifact(CompressedArtifact),
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Bytes(b) => write!(f, "Payload::Bytes({} bytes)", b.len()),
            Payload::Artifact(_) => write!(f, "Payload::Artifact(..)"),
        }
    }
}

/// The served result of one job.
///
/// The result travels as encoded bytes (shared zero-copy between the
/// cache and every deduplicated waiter); decoding happens only when a
/// caller asks for [`JobOutcome::artifact`].
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's label, as submitted.
    pub name: String,
    /// The content address the job resolved to.
    pub key: CacheKey,
    /// The carried result.
    payload: Payload,
    /// True when the artifact came from the cache rather than a fresh
    /// compression.
    pub from_cache: bool,
    /// True when this job shared an identical in-flight job's compression
    /// (same [`CacheKey`]) instead of running its own.
    pub deduped: bool,
}

impl JobOutcome {
    pub(crate) fn new(
        name: String,
        key: CacheKey,
        payload: Payload,
        from_cache: bool,
        deduped: bool,
    ) -> JobOutcome {
        JobOutcome { name, key, payload, from_cache, deduped }
    }

    /// The encoded blob bytes this outcome carries, when it travelled
    /// encoded (every cached or cache-written job does). `None` only for
    /// cache-bypassing jobs. This is the zero-copy accessor: the `Arc`
    /// is shared with the cache and with every deduplicated waiter.
    pub fn raw_bytes(&self) -> Option<&Arc<[u8]>> {
        match &self.payload {
            Payload::Bytes(bytes) => Some(bytes),
            Payload::Artifact(_) => None,
        }
    }

    /// Decodes (or clones) the compressed artifact. Decode-per-call by
    /// design — hot consumers that only need the durable bytes should
    /// use [`JobOutcome::raw_bytes`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the carried bytes fail to decode
    /// (they were validated at admission, so this indicates memory
    /// corruption after the fact).
    pub fn artifact(&self) -> Result<CompressedArtifact, MvqError> {
        match &self.payload {
            Payload::Bytes(bytes) => CompressedArtifact::from_bytes(bytes),
            Payload::Artifact(artifact) => Ok(artifact.clone()),
        }
    }

    /// Consumes the outcome, decoding the artifact (avoids the clone of
    /// [`JobOutcome::artifact`] for bypass jobs).
    ///
    /// # Errors
    ///
    /// As [`JobOutcome::artifact`].
    pub fn into_artifact(self) -> Result<CompressedArtifact, MvqError> {
        match self.payload {
            Payload::Bytes(bytes) => CompressedArtifact::from_bytes(&bytes),
            Payload::Artifact(artifact) => Ok(artifact),
        }
    }

    /// Decodes the assembled [`ModelArtifacts`] of a whole-model
    /// (streaming) job — see
    /// [`crate::CompressionService::submit_model`]. This materializes
    /// every layer at once; callers that want to stay bounded should read
    /// the per-layer blobs from the service's cache instead
    /// (`key.layer_key(conv_index)`).
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::Codec`] when the outcome does not carry a
    /// model (it came from a per-matrix job) or the bytes fail to decode.
    pub fn model_artifacts(&self) -> Result<ModelArtifacts, MvqError> {
        match &self.payload {
            Payload::Bytes(bytes) => ModelArtifacts::from_bytes(bytes),
            Payload::Artifact(_) => Err(MvqError::Codec(
                "outcome carries a single compressed matrix, not a model".into(),
            )),
        }
    }
}

/// Why one job failed. Errors are per job: a failing job never aborts
/// the queue, the worker pool, or any other job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The compression itself failed (bad data for the spec, degenerate
    /// weights, …).
    Compression {
        /// The failing job's label.
        name: String,
        /// The underlying pipeline error.
        source: MvqError,
    },
    /// The artifact cache failed the job — a corrupt stored blob or a
    /// failed disk write. Loud by design: a poisoned cache entry must
    /// never be silently recompressed over.
    Cache {
        /// The failing job's label.
        name: String,
        /// The underlying codec/IO error.
        source: MvqError,
    },
    /// The compression panicked. The panic is contained to this job; the
    /// worker thread survives.
    Panicked {
        /// The failing job's label.
        name: String,
        /// The panic payload, best-effort stringified.
        detail: String,
    },
    /// The service shut down before the job produced a result: the job
    /// was still queued when the service dropped (or was explicitly
    /// [`crate::CompressionService::shutdown`] down), or it was submitted
    /// after shutdown.
    Disconnected {
        /// The abandoned job's label.
        name: String,
    },
    /// The job was dropped at dequeue, before any work ran: its
    /// [`CancelToken`] was cancelled or its deadline passed while it was
    /// still queued. Cancelled work never occupies a worker.
    Cancelled {
        /// The cancelled job's label.
        name: String,
        /// Whether the token or the deadline killed it.
        kind: CancelKind,
    },
}

impl JobError {
    /// The label of the job that failed.
    pub fn name(&self) -> &str {
        match self {
            JobError::Compression { name, .. }
            | JobError::Cache { name, .. }
            | JobError::Panicked { name, .. }
            | JobError::Disconnected { name }
            | JobError::Cancelled { name, .. } => name,
        }
    }

    /// The underlying [`MvqError`], when the failure wraps one.
    pub fn mvq_error(&self) -> Option<&MvqError> {
        match self {
            JobError::Compression { source, .. } | JobError::Cache { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Compression { name, source } => {
                write!(f, "job `{name}`: compression failed: {source}")
            }
            JobError::Cache { name, source } => write!(f, "job `{name}`: cache failed: {source}"),
            JobError::Panicked { name, detail } => write!(f, "job `{name}` panicked: {detail}"),
            JobError::Disconnected { name } => {
                write!(f, "job `{name}`: service shut down before the job completed")
            }
            JobError::Cancelled { name, kind: CancelKind::Explicit } => {
                write!(f, "job `{name}`: cancelled while queued")
            }
            JobError::Cancelled { name, kind: CancelKind::DeadlineExpired } => {
                write!(f, "job `{name}`: deadline expired while queued")
            }
        }
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.mvq_error().map(|e| e as &(dyn Error + 'static))
    }
}

impl From<JobError> for MvqError {
    /// Flattens a job error back into the pipeline error space — used by
    /// the deprecated v1 batch shim, whose `submit` reported a bare
    /// [`MvqError`].
    fn from(e: JobError) -> MvqError {
        match e {
            JobError::Compression { source, .. } | JobError::Cache { source, .. } => source,
            JobError::Panicked { .. }
            | JobError::Disconnected { .. }
            | JobError::Cancelled { .. } => MvqError::InvalidConfig(e.to_string()),
        }
    }
}

/// What a [`Ticket`] resolves to.
pub type JobResult = Result<JobOutcome, JobError>;

/// A handle to one submitted job. Obtain from
/// [`crate::CompressionService::submit_one`]; redeem with [`Ticket::wait`]
/// (blocking) or poll with [`Ticket::try_poll`].
///
/// Dropping a ticket abandons the result but never the work: the job
/// still runs (and, cache permitting, its artifact is stored).
#[derive(Debug)]
pub struct Ticket {
    name: String,
    key: CacheKey,
    rx: mpsc::Receiver<JobResult>,
    done: Option<JobResult>,
    progress: Option<ProgressHandle>,
    trace: Trace,
}

impl Ticket {
    pub(crate) fn new(
        name: String,
        key: CacheKey,
        rx: mpsc::Receiver<JobResult>,
        progress: Option<ProgressHandle>,
        trace: Trace,
    ) -> Ticket {
        Ticket { name, key, rx, done: None, progress, trace }
    }

    /// The submitted job's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content address the job resolved to — stable before the job
    /// runs, so callers can correlate tickets with cache entries.
    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// Per-layer progress of a whole-model (streaming) job: `None` for
    /// per-matrix jobs, `Some` from the moment of submission for model
    /// jobs. `layers_total` is `0` until a worker starts streaming, and
    /// stays `0` for a job answered from the cache (nothing streamed).
    /// Poll freely — the snapshot is two relaxed atomic loads.
    pub fn progress(&self) -> Option<Progress> {
        self.progress.as_ref().map(ProgressHandle::snapshot)
    }

    /// This submission's lifecycle trace: monotonic µs stage stamps
    /// (submitted → queued → … → replied) recorded as the job moves
    /// through the serving stack. Live — poll [`mvq_obs::Trace::snapshot`]
    /// while the job runs, or read the completed trace from the service
    /// registry's [`mvq_obs::TraceRing`] after it resolves. A dedup
    /// rider's trace is marked [`mvq_obs::Trace::deduped`] and only
    /// stamps submit and reply (the shared job's trace carries the
    /// execution stages).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(mut self) -> JobResult {
        if let Some(done) = self.done.take() {
            return done;
        }
        self.rx.recv().unwrap_or_else(|_| {
            Err(JobError::Disconnected { name: std::mem::take(&mut self.name) })
        })
    }

    /// Blocks until the job finishes or `timeout` elapses. On timeout
    /// the ticket rides back in the `Err`, still redeemable: the job
    /// keeps running, and the caller can [`Ticket::wait`] again, poll,
    /// cancel the job's [`CancelToken`], or drop the ticket — this is
    /// how a wire connection honors a client deadline without
    /// abandoning the result channel.
    ///
    /// # Errors
    ///
    /// Returns the ticket itself when the job has not finished within
    /// `timeout`.
    // The large Err IS the API: the unredeemed ticket rides back to the
    // caller by value, so timing out can never lose the result channel.
    #[allow(clippy::result_large_err)]
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<JobResult, Ticket> {
        if let Some(done) = self.done.take() {
            return Ok(done);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Ok(Err(JobError::Disconnected { name: std::mem::take(&mut self.name) }))
            }
        }
    }

    /// Non-blocking check: `None` while the job is still running, a
    /// borrow of the result once it finished. The result stays in the
    /// ticket, so polling then [`Ticket::wait`]-ing (or polling again) is
    /// fine.
    pub fn try_poll(&mut self) -> Option<&JobResult> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.done = Some(result),
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.done = Some(Err(JobError::Disconnected { name: self.name.clone() }));
                }
            }
        }
        self.done.as_ref()
    }
}
