//! The deprecated v1 batch surface, kept as a thin shim over
//! [`CompressionService`].
//!
//! v1's `submit(Vec<CompressionJob>)` blocked on a whole batch and failed
//! it wholesale on the first error. The shim preserves the observable
//! semantics — same dedupe/hit accounting, same first-error abort, and
//! bit-identical artifacts (the conformance suite proves the ticket path
//! and this path agree for every registry algorithm) — while routing all
//! work through the v2 ticket API. One deliberate side-effect deviation:
//! when a batch fails, the healthy jobs that already compressed stay in
//! the cache (v1 discarded them), so resubmitting after fixing the bad
//! job serves the siblings as hits instead of recompressing — the cached
//! artifacts are valid and bit-identical either way. New code should
//! build [`CompressionRequest`]s and call
//! [`CompressionService::submit_one`] directly; see the crate docs for
//! the migration table.

use std::collections::HashMap;
use std::path::Path;

use mvq_core::pipeline::PipelineSpec;
use mvq_core::store::{ArtifactCache, CacheKey, CacheStats};
use mvq_core::MvqError;
use mvq_tensor::Tensor;

use crate::request::CompressionRequest;
use crate::service::CompressionService;
use crate::ticket::JobOutcome;

/// One unit of work for the deprecated batch API: compress `weight` with
/// `algo` under `spec`. New code should use [`CompressionRequest`].
#[derive(Debug, Clone)]
pub struct CompressionJob {
    /// Caller-chosen label (e.g. a layer name); not part of the identity.
    pub name: String,
    /// The weight tensor to compress.
    pub weight: Tensor,
    /// Registry algorithm name (aliases like `vq` are canonicalized).
    pub algo: String,
    /// Pipeline hyperparameters.
    pub spec: PipelineSpec,
    /// RNG seed. `None` lets the service derive a deterministic seed from
    /// the job's content, so identical jobs dedupe across batches.
    pub seed: Option<u64>,
}

impl CompressionJob {
    /// A job with a content-derived seed.
    pub fn new(
        name: impl Into<String>,
        weight: Tensor,
        algo: impl Into<String>,
        spec: PipelineSpec,
    ) -> CompressionJob {
        CompressionJob { name: name.into(), weight, algo: algo.into(), spec, seed: None }
    }

    /// Pins the RNG seed (the seed becomes part of the cache identity).
    pub fn with_seed(mut self, seed: u64) -> CompressionJob {
        self.seed = Some(seed);
        self
    }
}

/// What one [`BatchCompressionService::submit`] call did.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Distinct cache keys in the batch.
    pub unique_jobs: usize,
    /// Jobs answered by sharing an identical in-batch job.
    pub deduped_jobs: usize,
    /// Unique jobs answered from the cache.
    pub cache_hits: usize,
    /// Unique jobs compressed fresh in this batch.
    pub compressed: usize,
}

/// The v1 batch facade over [`CompressionService`]: submit a whole batch,
/// block for all of it, abort it all on the first error.
pub struct BatchCompressionService {
    service: CompressionService,
}

impl BatchCompressionService {
    /// A service over a purely in-memory cache.
    pub fn in_memory() -> BatchCompressionService {
        BatchCompressionService { service: CompressionService::in_memory() }
    }

    /// A service whose cache persists blobs under `dir`, surviving
    /// restarts.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation errors.
    pub fn with_cache_dir<P: AsRef<Path>>(dir: P) -> Result<BatchCompressionService, MvqError> {
        Ok(BatchCompressionService { service: CompressionService::with_cache_dir(dir)? })
    }

    /// A service over an existing cache.
    pub fn with_cache(cache: ArtifactCache) -> BatchCompressionService {
        let service = CompressionService::builder()
            .cache(cache)
            .build()
            .expect("builder with a pre-built cache is valid");
        BatchCompressionService { service }
    }

    /// The v2 service this facade drives — the migration escape hatch.
    pub fn service(&self) -> &CompressionService {
        &self.service
    }

    /// The underlying cache (for stats and direct lookups).
    pub fn cache(&self) -> &ArtifactCache {
        self.service.cache()
    }

    /// Cache traffic counters accumulated over the service's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.service.cache_stats()
    }

    /// Serves a batch with v1 semantics: resolves every job to its
    /// content address, runs the *unique* jobs through the worker pool
    /// (duplicates ride along for free), and reports per-job outcomes in
    /// submission order — or the **first** error, failing the whole
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns the first job validation, compression, or cache error —
    /// the v1 contract. The v2 ticket API
    /// ([`CompressionService::submit_one`]) isolates errors per job
    /// instead; prefer it.
    #[deprecated(
        since = "0.2.0",
        note = "build `CompressionRequest`s and use `CompressionService::submit_one`, which \
                isolates errors per job instead of failing the whole batch"
    )]
    pub fn submit(&self, jobs: Vec<CompressionJob>) -> Result<BatchReport, MvqError> {
        // resolve identities in submission order; v1 reported the first
        // validation error before any work ran
        let mut keys: Vec<CacheKey> = Vec::with_capacity(jobs.len());
        let mut requests: Vec<Option<CompressionRequest>> = Vec::with_capacity(jobs.len());
        let mut representative: HashMap<CacheKey, usize> = HashMap::new();
        for (idx, job) in jobs.iter().enumerate() {
            let mut builder = CompressionRequest::builder(&job.name, job.weight.clone(), &job.algo)
                .spec(job.spec.clone());
            if let Some(seed) = job.seed {
                builder = builder.seed(seed);
            }
            let request = builder.build()?;
            let key = CacheKey::new(
                request.algo(),
                request.weight(),
                request.spec(),
                request.resolved_seed(),
            )?;
            let is_rep = !representative.contains_key(&key);
            representative.entry(key.clone()).or_insert(idx);
            keys.push(key);
            requests.push(is_rep.then_some(request));
        }

        // fan the unique jobs out over the pool and wait for all of them,
        // reporting the first failure in submission order
        let tickets: Vec<Option<crate::Ticket>> = requests
            .into_iter()
            .map(|request| request.map(|r| self.service.submit_one(r)))
            .collect();
        let mut served: HashMap<usize, JobOutcome> = HashMap::new();
        let mut first_error: Option<MvqError> = None;
        for (idx, ticket) in tickets.into_iter().enumerate() {
            let Some(ticket) = ticket else { continue };
            // keep waiting on later tickets even after an error, so the
            // pool is quiescent for this batch before we report
            match ticket.wait() {
                Ok(outcome) => {
                    served.insert(idx, outcome);
                }
                Err(e) => {
                    first_error.get_or_insert(e.into());
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }

        // assemble per-job outcomes in submission order
        let cache_hits = served.values().filter(|o| o.from_cache).count();
        let unique_jobs = representative.len();
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut deduped_jobs = 0usize;
        for (idx, (job, key)) in jobs.iter().zip(&keys).enumerate() {
            let rep = representative[key];
            let deduped = rep != idx;
            if deduped {
                deduped_jobs += 1;
            }
            let mut outcome = served[&rep].clone();
            outcome.name = job.name.clone();
            outcome.deduped = deduped;
            outcomes.push(outcome);
        }
        Ok(BatchReport {
            outcomes,
            unique_jobs,
            deduped_jobs,
            cache_hits,
            compressed: unique_jobs - cache_hits,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mvq_core::CompressedArtifact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    fn spec() -> PipelineSpec {
        PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() }
    }

    #[test]
    fn batch_dedupes_identical_jobs() {
        let service = BatchCompressionService::in_memory();
        let w = weight(0);
        let jobs = vec![
            CompressionJob::new("a", w.clone(), "mvq", spec()),
            CompressionJob::new("b", w.clone(), "mvq", spec()),
            CompressionJob::new("c", w, "vq-a", spec()),
        ];
        let report = service.submit(jobs).unwrap();
        assert_eq!(report.unique_jobs, 2);
        assert_eq!(report.deduped_jobs, 1);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.compressed, 2);
        assert!(report.outcomes[1].deduped);
        let bits = |a: &CompressedArtifact| {
            a.reconstruct().unwrap().data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(
            bits(&report.outcomes[0].artifact().unwrap()),
            bits(&report.outcomes[1].artifact().unwrap())
        );
    }

    #[test]
    fn second_batch_is_all_hits() {
        let service = BatchCompressionService::in_memory();
        let jobs = || vec![CompressionJob::new("a", weight(1), "mvq", spec())];
        let first = service.submit(jobs()).unwrap();
        assert_eq!(first.cache_hits, 0);
        let second = service.submit(jobs()).unwrap();
        assert_eq!(second.cache_hits, 1);
        assert_eq!(second.compressed, 0);
        assert!(second.outcomes[0].from_cache);
    }

    #[test]
    fn pinned_seeds_split_identity() {
        let service = BatchCompressionService::in_memory();
        let w = weight(2);
        let jobs = vec![
            CompressionJob::new("a", w.clone(), "mvq", spec()).with_seed(1),
            CompressionJob::new("b", w, "mvq", spec()).with_seed(2),
        ];
        let report = service.submit(jobs).unwrap();
        assert_eq!(report.unique_jobs, 2);
        assert_eq!(report.deduped_jobs, 0);
    }

    #[test]
    fn alias_and_canonical_name_are_one_identity() {
        // `vq` is the documented alias of `vq-a`: unseeded jobs under
        // either spelling must derive the same content seed, hence the
        // same cache key, and dedupe into one compression
        let service = BatchCompressionService::in_memory();
        let w = weight(4);
        let jobs = vec![
            CompressionJob::new("alias", w.clone(), "vq", spec()),
            CompressionJob::new("canonical", w, "vq-a", spec()),
        ];
        let report = service.submit(jobs).unwrap();
        assert_eq!(report.unique_jobs, 1);
        assert_eq!(report.deduped_jobs, 1);
        assert_eq!(report.outcomes[0].key, report.outcomes[1].key);
    }

    #[test]
    fn unknown_algo_is_a_typed_error() {
        let service = BatchCompressionService::in_memory();
        let jobs = vec![CompressionJob::new("a", weight(3), "vqgan", spec())];
        assert!(matches!(service.submit(jobs), Err(MvqError::InvalidConfig(_))));
    }

    #[test]
    fn batch_abort_reports_the_first_error_in_submission_order() {
        // v1 semantics preserved by the shim: one poisoned job fails the
        // whole batch (the ticket API is where per-job isolation lives)
        let service = BatchCompressionService::in_memory();
        let jobs = vec![
            CompressionJob::new("healthy", weight(5), "mvq", spec()),
            CompressionJob::new("poisoned", Tensor::zeros(vec![32, 16]), "mvq", spec()),
        ];
        let err = service.submit(jobs).unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)), "{err:?}");
    }
}
