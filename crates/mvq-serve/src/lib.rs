//! # mvq-serve — the compression service
//!
//! Serving layer over the `mvq_core` pipeline registry, built for
//! long-lived processes: a typed request surface, a hand-rolled
//! worker-thread pool over std channels (no async runtime), per-job error
//! isolation, and a content-addressed, byte-budgeted artifact cache.
//!
//! * [`CompressionRequest`] — validated at construction
//!   ([`CompressionRequest::builder`]): algorithm name, [`PipelineSpec`]
//!   (+ kernel strategy), optional pinned seed, [`Priority`], and
//!   [`CacheMode`], each invalid combination a typed
//!   [`MvqError`](mvq_core::MvqError) *before* any work queues.
//! * [`CompressionService::submit_one`] — admits one request through a
//!   bounded priority queue (backpressure: `submit_one` blocks while
//!   full, [`CompressionService::try_submit_one`] refuses and hands the
//!   request back) and returns a [`Ticket`]; redeem with
//!   [`Ticket::wait`] or poll with [`Ticket::try_poll`].
//! * Per-job outcomes — every ticket resolves to
//!   `Ok(`[`JobOutcome`]`)` or a typed [`JobError`]; one poisoned job
//!   never aborts the queue or any other job.
//! * [`CachePolicy`] — byte budgets (memory and disk) for the service's
//!   [`ArtifactCache`](mvq_core::store::ArtifactCache), enforced by LRU
//!   eviction that survives restarts.
//! * [`CompressionService::submit_model`] — whole-model jobs as a
//!   first-class request kind ([`ModelCompressionRequest`]): the model's
//!   convs stream through `mvq_core`'s bounded-window pipeline
//!   ([`mvq_core::stream_compress_model`]), each finished layer spilling
//!   to the cache as its own blob, with per-layer [`Progress`] observable
//!   on the ticket ([`Ticket::progress`]) while the job runs. Identical
//!   in-flight model jobs dedupe and share one streaming run; the
//!   streamed result is bit-identical to the in-memory
//!   `compress_model_artifacts` path.
//! * Deadlines and cancellation — a request may carry an absolute queue
//!   deadline ([`CompressionRequestBuilder::deadline`]) and/or a shared
//!   [`CancelToken`] ([`CompressionRequestBuilder::cancel_token`]); a
//!   queued job whose deadline passed or whose token was cancelled is
//!   dropped **at dequeue** with [`JobError::Cancelled`] — expired work
//!   never occupies a worker. [`Ticket::wait_timeout`] bounds the wait on
//!   the caller's side, handing the still-redeemable ticket back on
//!   timeout.
//!
//! Identity is *content*, not position: a job's
//! [`CacheKey`](mvq_core::store::CacheKey) combines the weight tensor's
//! bit-pattern hash, the [`PipelineSpec`] fingerprint, the canonical
//! algorithm name, the kernel strategy, and the RNG seed. Two in-flight
//! jobs agreeing on all five share one compression (riders report
//! `deduped: true`), and because every registry algorithm is
//! deterministic for a fixed seed, a cache hit — or a dedup share — is
//! **bit-identical** to recompressing from scratch, regardless of worker
//! count or interleaving (proven per registry method by the conformance
//! suite, in debug and `--release`).
//!
//! Seeds may be pinned per request or left to the service, which derives
//! a deterministic *content seed* from the rest of the key — so unseeded
//! workloads still dedupe and cache across batches and processes.
//!
//! ```
//! use mvq_core::pipeline::PipelineSpec;
//! use mvq_serve::{CachePolicy, CompressionRequest, CompressionService, Priority};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let w = mvq_tensor::kaiming_normal(vec![64, 16], 16, &mut rng);
//! let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
//!
//! let service = CompressionService::builder()
//!     .workers(2)
//!     .queue_capacity(64)
//!     .cache_policy(CachePolicy::UNBOUNDED.with_memory_budget(16 << 20))
//!     .build()?;
//!
//! let request = CompressionRequest::builder("conv1", w, "mvq")
//!     .spec(spec)
//!     .seed(7)
//!     .priority(Priority::High)
//!     .build()?;
//! let ticket = service.submit_one(request);
//! let outcome = ticket.wait()?;
//! assert_eq!(outcome.name, "conv1");
//! assert!(!outcome.from_cache);
//! # Ok::<(), mvq_core::MvqError>(())
//! ```
//!
//! ## Migrating from v1 (`submit`) to v2 (tickets)
//!
//! The v1 surface — [`BatchCompressionService::submit`] over
//! [`CompressionJob`]s — is deprecated but fully functional as a shim
//! over the v2 service, with its exact semantics: one blocking call per
//! batch, whole-batch abort on the first error, in-batch dedup
//! accounting, and bit-identical artifacts (the conformance suite pins
//! v1 ≡ v2 ≡ fresh compression for every registry algorithm).
//!
//! | v1 | v2 |
//! |----|----|
//! | `CompressionJob::new(name, w, algo, spec)` | `CompressionRequest::builder(name, w, algo).spec(spec).build()?` |
//! | `.with_seed(s)` | `.seed(s)` |
//! | invalid algo/spec errors the whole `submit` | `build()` returns the typed error before anything queues |
//! | `service.submit(jobs)? → BatchReport` | `jobs.map(\|r\| service.submit_one(r))`, then `Ticket::wait` each |
//! | first error aborts the batch | each ticket resolves independently (`Ok(JobOutcome)` / `Err(JobError)`) |
//! | implicit rayon fan-out per batch | persistent worker pool; `builder().workers(n).queue_capacity(c)` |
//! | no admission control | bounded queue: `submit_one` blocks, `try_submit_one` refuses |
//! | unbounded cache growth | `builder().cache_policy(CachePolicy::UNBOUNDED.with_disk_budget(..))` |
//!
//! Cache blobs, [`CacheKey`](mvq_core::store::CacheKey)s, content seeds,
//! and `FORMAT_VERSION` are unchanged: a v1-era disk cache serves v2
//! traffic (and vice versa) without invalidation.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod batch;
mod request;
mod service;
mod ticket;

pub use batch::{BatchCompressionService, BatchReport, CompressionJob};
pub use request::{
    CacheMode, CompressionRequest, CompressionRequestBuilder, ModelCompressionRequest,
    ModelCompressionRequestBuilder, Priority,
};
pub use service::{CachePolicy, CompressionService, ServiceBuilder, SubmitError};
pub use ticket::{CancelKind, CancelToken, JobError, JobOutcome, JobResult, Ticket};

/// Re-exported for convenience: requests are built around a spec, so
/// service callers need the type constantly.
pub use mvq_core::pipeline::PipelineSpec;

/// Re-exported for convenience: model requests carry a streaming window,
/// and their tickets report per-layer [`Progress`].
pub use mvq_core::{Progress, StreamConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_core::{CompressedArtifact, MvqError};
    use mvq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    fn spec() -> PipelineSpec {
        PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() }
    }

    fn bits(a: &CompressedArtifact) -> Vec<u32> {
        a.reconstruct().unwrap().data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn ticket_resolves_to_the_submitted_job() {
        let service = CompressionService::builder().workers(2).build().unwrap();
        let request = CompressionRequest::builder("conv0", weight(0), "mvq")
            .spec(spec())
            .seed(3)
            .build()
            .unwrap();
        let key = {
            let ticket = service.submit_one(request.clone());
            assert_eq!(ticket.name(), "conv0");
            let outcome = ticket.wait().unwrap();
            assert!(!outcome.from_cache);
            assert!(!outcome.deduped);
            outcome.key
        };
        // resubmission hits the cache under the same key
        let warm = service.submit_one(request).wait().unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.key, key);
    }

    #[test]
    fn try_poll_reports_pending_then_done_and_stays_redeemable() {
        let service = CompressionService::builder().workers(1).build().unwrap();
        let request =
            CompressionRequest::builder("a", weight(1), "mvq").spec(spec()).build().unwrap();
        let mut ticket = service.submit_one(request);
        // spin until done; each Some borrow leaves the result in place
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            if let Some(result) = ticket.try_poll() {
                assert!(result.is_ok());
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job never finished");
            std::thread::yield_now();
        }
        assert!(ticket.try_poll().is_some(), "polling again still sees the result");
        assert!(ticket.wait().is_ok(), "wait after poll redeems the same result");
    }

    #[test]
    fn in_flight_duplicates_share_one_compression() {
        // a zero-worker service queues without executing, so attaching a
        // duplicate before any work runs is deterministic
        let service = CompressionService::builder().workers(0).queue_capacity(8).build().unwrap();
        let request = |name: &str| {
            CompressionRequest::builder(name, weight(2), "mvq")
                .spec(spec())
                .seed(9)
                .build()
                .unwrap()
        };
        let first = service.submit_one(request("a"));
        let rider = service.submit_one(request("b"));
        assert_eq!(service.queued(), 1, "the duplicate must not occupy a queue slot");
        assert_eq!(first.key(), rider.key());
        drop(service); // zero workers: queued job is abandoned
        assert!(matches!(first.wait(), Err(JobError::Disconnected { .. })));
        assert!(matches!(rider.wait(), Err(JobError::Disconnected { .. })));
    }

    #[test]
    fn bypass_requests_skip_cache_and_dedup() {
        let service = CompressionService::builder().workers(2).build().unwrap();
        let request = |name: &str, mode: CacheMode| {
            CompressionRequest::builder(name, weight(3), "mvq")
                .spec(spec())
                .seed(5)
                .cache_mode(mode)
                .build()
                .unwrap()
        };
        let primed = service.submit_one(request("prime", CacheMode::ReadWrite)).wait().unwrap();
        let bypass = service.submit_one(request("bypass", CacheMode::Bypass)).wait().unwrap();
        assert!(!bypass.from_cache, "bypass must not read the cache");
        assert!(!bypass.deduped);
        assert_eq!(
            bits(&primed.artifact().unwrap()),
            bits(&bypass.artifact().unwrap()),
            "still deterministic"
        );
        let readonly = service.submit_one(request("ro", CacheMode::ReadOnly)).wait().unwrap();
        assert!(readonly.from_cache, "read-only still reads");
    }

    #[test]
    fn read_only_requests_do_not_grow_the_cache() {
        let service = CompressionService::builder().workers(1).build().unwrap();
        let request = CompressionRequest::builder("ro", weight(4), "mvq")
            .spec(spec())
            .cache_mode(CacheMode::ReadOnly)
            .build()
            .unwrap();
        let outcome = service.submit_one(request).wait().unwrap();
        assert!(!outcome.from_cache);
        assert_eq!(service.cache().len(), 0, "read-only job stored an artifact");
    }

    #[test]
    fn zero_capacity_queue_is_rejected() {
        let err = CompressionService::builder().queue_capacity(0).build().unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)));
    }

    #[test]
    fn conflicting_cache_configuration_is_rejected() {
        use mvq_core::store::ArtifactCache;
        let err = CompressionService::builder()
            .cache(ArtifactCache::in_memory())
            .cache_dir(std::env::temp_dir())
            .build()
            .unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)));
        let err = CompressionService::builder()
            .cache(ArtifactCache::in_memory())
            .cache_policy(CachePolicy::UNBOUNDED.with_memory_budget(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)));
    }

    /// A request slow enough to keep the single worker busy while the
    /// test arranges the queue behind it.
    fn blocker_request(name: &str) -> CompressionRequest {
        CompressionRequest::builder(name, weight(40), "mvq")
            .spec(PipelineSpec { k: 8, swap_trials: 20_000, ..PipelineSpec::default() })
            .seed(1)
            .build()
            .unwrap()
    }

    /// Spins until the single worker has taken the blocker off the queue.
    fn wait_until_queue_empty(service: &CompressionService) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while service.queued() > 0 {
            assert!(std::time::Instant::now() < deadline, "worker never took the blocker");
            std::thread::yield_now();
        }
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back_then_wait_redeems_it() {
        // satellite regression (ticket lifecycle): timing out must not
        // consume the ticket — the job keeps running and a later wait
        // still redeems its result
        let service = CompressionService::builder().workers(1).queue_capacity(8).build().unwrap();
        let blocker = service.submit_one(blocker_request("blocker"));
        wait_until_queue_empty(&service);
        let request =
            CompressionRequest::builder("late", weight(41), "mvq").spec(spec()).build().unwrap();
        let ticket = service.submit_one(request);
        // the worker is busy with the blocker, so the queued job cannot
        // resolve within a zero timeout
        let ticket = match ticket.wait_timeout(std::time::Duration::ZERO) {
            Err(ticket) => ticket,
            Ok(result) => panic!("queued job resolved within a zero timeout: {result:?}"),
        };
        assert_eq!(ticket.name(), "late", "the ticket rides back intact");
        assert!(ticket.wait().is_ok(), "the timed-out ticket must still redeem");
        assert!(blocker.wait().is_ok());
    }

    #[test]
    fn wait_timeout_then_disconnect_reports_disconnected() {
        // satellite regression (ticket lifecycle): a ticket handed back on
        // timeout must observe the service's shutdown, not hang or panic
        let service = CompressionService::builder().workers(0).queue_capacity(8).build().unwrap();
        let request =
            CompressionRequest::builder("orphan", weight(42), "mvq").spec(spec()).build().unwrap();
        let ticket = service
            .submit_one(request)
            .wait_timeout(std::time::Duration::from_millis(10))
            .expect_err("zero workers: the job can never resolve in time");
        drop(service);
        assert!(matches!(ticket.wait(), Err(JobError::Disconnected { .. })));
    }

    #[test]
    fn cancelled_queued_job_is_dropped_at_dequeue_and_never_runs() {
        let service = CompressionService::builder().workers(1).queue_capacity(8).build().unwrap();
        let blocker = service.submit_one(blocker_request("blocker"));
        wait_until_queue_empty(&service);
        let token = CancelToken::new();
        let request = CompressionRequest::builder("doomed", weight(43), "mvq")
            .spec(spec())
            .cancel_token(token.clone())
            .build()
            .unwrap();
        let ticket = service.submit_one(request);
        let doomed_key = ticket.key().clone();
        token.cancel(); // the job is still queued behind the blocker
        match ticket.wait() {
            Err(JobError::Cancelled { name, kind: CancelKind::Explicit }) => {
                assert_eq!(name, "doomed");
            }
            other => panic!("expected Cancelled(Explicit), got {other:?}"),
        }
        assert!(blocker.wait().is_ok(), "the blocker is unaffected");
        assert!(
            service.cache().get_raw(&doomed_key).unwrap().is_none(),
            "the cancelled job ran anyway: its artifact reached the cache"
        );
    }

    #[test]
    fn deadline_expired_queued_job_is_dropped_at_dequeue_and_never_runs() {
        let service = CompressionService::builder().workers(1).queue_capacity(8).build().unwrap();
        let blocker = service.submit_one(blocker_request("blocker"));
        wait_until_queue_empty(&service);
        let request = CompressionRequest::builder("expired", weight(44), "mvq")
            .spec(spec())
            .deadline(std::time::Instant::now()) // already past by dequeue
            .build()
            .unwrap();
        let ticket = service.submit_one(request);
        let expired_key = ticket.key().clone();
        match ticket.wait() {
            Err(JobError::Cancelled { name, kind: CancelKind::DeadlineExpired }) => {
                assert_eq!(name, "expired");
            }
            other => panic!("expected Cancelled(DeadlineExpired), got {other:?}"),
        }
        assert!(blocker.wait().is_ok());
        assert!(
            service.cache().get_raw(&expired_key).unwrap().is_none(),
            "the expired job ran anyway: its artifact reached the cache"
        );
    }

    /// Tentpole: a whole-model job streams through the service with
    /// per-layer progress observable on the ticket while it runs, and its
    /// assembled result is bit-identical to the in-memory oracle.
    #[test]
    fn model_job_streams_with_observable_progress() {
        let mut rng = StdRng::seed_from_u64(21);
        let model = mvq_nn::models::mobilenet_v1_lite(4, &mut rng);
        let mut convs = 0usize;
        model.visit_convs(&mut |_| convs += 1);
        let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };

        let service = CompressionService::builder().workers(1).build().unwrap();
        let request = ModelCompressionRequest::builder("mobilenet", model.clone(), "mvq")
            .spec(spec.clone())
            .seed(11)
            .stream(StreamConfig::default().with_workers(2))
            .build()
            .unwrap();
        let mut ticket = service.submit_model(request.clone());
        assert!(ticket.progress().is_some(), "model tickets expose progress from submission");

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        let mut saw_partial = false;
        loop {
            if ticket.try_poll().is_some() {
                break;
            }
            let p = ticket.progress().expect("model ticket always has progress");
            if p.layers_total > 0 && p.layers_done < p.layers_total {
                saw_partial = true;
            }
            assert!(std::time::Instant::now() < deadline, "model job never finished");
            std::thread::yield_now();
        }
        assert!(saw_partial, "per-layer progress was never observable mid-run");
        let p = ticket.progress().unwrap();
        assert_eq!(p.layers_total, convs);
        assert_eq!(p.layers_done, convs, "every conv reaches a terminal state");

        let outcome = ticket.wait().unwrap();
        assert!(!outcome.from_cache);
        let streamed = outcome.model_artifacts().unwrap();
        let oracle = {
            let comp = mvq_core::pipeline::by_name("mvq", &spec).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            comp.compress_model_artifacts(&model, &mut rng).unwrap()
        };
        assert_eq!(
            streamed.fingerprint().unwrap(),
            oracle.fingerprint().unwrap(),
            "served streaming result diverges from the in-memory oracle"
        );

        // a second submission answers from the cache without streaming
        let warm = service.submit_model(request);
        let warm_outcome = warm.wait().unwrap();
        assert!(warm_outcome.from_cache);
        assert_eq!(
            warm_outcome.model_artifacts().unwrap().fingerprint().unwrap(),
            oracle.fingerprint().unwrap()
        );
        // per-matrix outcomes refuse to decode as models
        let matrix = service
            .submit_one(
                CompressionRequest::builder("m", weight(6), "mvq").spec(spec).build().unwrap(),
            )
            .wait()
            .unwrap();
        assert!(matrix.model_artifacts().is_err());
    }

    #[test]
    fn in_flight_model_duplicates_share_one_stream_and_its_progress() {
        let mut rng = StdRng::seed_from_u64(22);
        let model = mvq_nn::models::tiny_cnn(4, 8, &mut rng);
        let request = |name: &str| {
            ModelCompressionRequest::builder(name, model.clone(), "mvq")
                .spec(PipelineSpec { k: 8, ..PipelineSpec::default() })
                .seed(5)
                .build()
                .unwrap()
        };
        // zero workers: nothing executes, so the rider deterministically
        // attaches to the queued job
        let service = CompressionService::builder().workers(0).queue_capacity(8).build().unwrap();
        let first = service.submit_model(request("a"));
        let rider = service.submit_model(request("b"));
        assert_eq!(service.queued(), 1, "the duplicate must not occupy a queue slot");
        assert_eq!(first.key(), rider.key());
        assert!(rider.progress().is_some(), "riders observe the executing job's progress");
        drop(service);
        assert!(matches!(first.wait(), Err(JobError::Disconnected { .. })));
        assert!(matches!(rider.wait(), Err(JobError::Disconnected { .. })));
    }

    #[test]
    fn model_requests_validate_at_build() {
        let mut rng = StdRng::seed_from_u64(23);
        let model = mvq_nn::models::tiny_cnn(4, 8, &mut rng);
        let unknown = ModelCompressionRequest::builder("m", model.clone(), "vqgan").build();
        assert!(matches!(unknown, Err(MvqError::InvalidConfig(_))));
        let empty_name = ModelCompressionRequest::builder("", model, "mvq").build();
        assert!(matches!(empty_name, Err(MvqError::InvalidConfig(_))));
        let convless =
            ModelCompressionRequest::builder("m", mvq_nn::Sequential::new(vec![]), "mvq").build();
        assert!(matches!(convless, Err(MvqError::InvalidConfig(_))));
        // aliases canonicalize, and per-matrix tickets have no progress
        let ok = ModelCompressionRequest::builder(
            "m",
            {
                let mut rng = StdRng::seed_from_u64(24);
                mvq_nn::models::tiny_cnn(4, 8, &mut rng)
            },
            "vq",
        )
        .build()
        .unwrap();
        assert_eq!(ok.algo(), "vq-a");
        let service = CompressionService::builder().workers(0).queue_capacity(4).build().unwrap();
        let matrix_ticket = service.submit_one(
            CompressionRequest::builder("w", weight(7), "mvq").spec(spec()).build().unwrap(),
        );
        assert!(matrix_ticket.progress().is_none(), "matrix tickets expose no progress");
    }

    #[test]
    fn queue_full_hands_the_request_back() {
        let service = CompressionService::builder().workers(0).queue_capacity(2).build().unwrap();
        let request = |name: &str, seed: u64| {
            CompressionRequest::builder(name, weight(5), "mvq")
                .spec(spec())
                .seed(seed)
                .build()
                .unwrap()
        };
        let _t0 = service.try_submit_one(request("a", 0)).unwrap();
        let _t1 = service.try_submit_one(request("b", 1)).unwrap();
        match service.try_submit_one(request("c", 2)) {
            Err(SubmitError::QueueFull { capacity, request }) => {
                assert_eq!(capacity, 2);
                assert_eq!(request.name(), "c");
                assert_eq!(request.seed(), Some(2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }
}
