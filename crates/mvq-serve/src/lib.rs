//! # mvq-serve — the batch compression service
//!
//! Serving layer over the `mvq_core` pipeline registry: accepts many
//! `(weight, spec, algorithm)` jobs at once, deduplicates identical jobs
//! in flight, fans unique work out rayon-parallel, and answers from a
//! content-addressed [`ArtifactCache`] whenever the same compression has
//! been done before — in this process or (with a disk-backed cache) by a
//! previous one.
//!
//! Identity is *content*, not position: a job's [`CacheKey`] combines the
//! weight tensor's bit-pattern hash, the [`PipelineSpec`] fingerprint,
//! the canonical algorithm name, the kernel strategy, and the RNG seed.
//! Two jobs agreeing on all five are the same compression, wherever they
//! appear in a batch — the service compresses once and every duplicate
//! shares the result. Because every algorithm in
//! `mvq_core::pipeline::by_name` is deterministic for a fixed seed, a
//! cache hit is **bit-identical** to recompressing from scratch (the
//! round-trip/equivalence suites in `tests/` prove this for every
//! registry method, in debug and `--release`).
//!
//! Seeds may be pinned per job or left to the service, which derives a
//! deterministic *content seed* from the rest of the key — so unseeded
//! workloads still dedupe and cache across batches and processes.
//!
//! ```
//! use mvq_core::pipeline::PipelineSpec;
//! use mvq_serve::{BatchCompressionService, CompressionJob};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let w = mvq_tensor::kaiming_normal(vec![64, 16], 16, &mut rng);
//! let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
//! let service = BatchCompressionService::in_memory();
//! let jobs = vec![
//!     CompressionJob::new("conv1", w.clone(), "mvq", spec.clone()),
//!     CompressionJob::new("conv1-again", w, "mvq", spec), // deduped
//! ];
//! let report = service.submit(jobs)?;
//! assert_eq!(report.outcomes.len(), 2);
//! assert_eq!(report.unique_jobs, 1);
//! assert_eq!(report.deduped_jobs, 1);
//! # Ok::<(), mvq_core::MvqError>(())
//! ```

use std::collections::HashMap;
use std::path::Path;

use mvq_core::pipeline::{by_name, canonical_name, PipelineSpec};
use mvq_core::store::{ArtifactCache, CacheKey, CacheStats, Fnv1a};
use mvq_core::{CompressedArtifact, MvqError};
use mvq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One unit of work for the service: compress `weight` with `algo` under
/// `spec`.
#[derive(Debug, Clone)]
pub struct CompressionJob {
    /// Caller-chosen label (e.g. a layer name); not part of the identity.
    pub name: String,
    /// The weight tensor to compress.
    pub weight: Tensor,
    /// Registry algorithm name (aliases like `vq` are canonicalized).
    pub algo: String,
    /// Pipeline hyperparameters.
    pub spec: PipelineSpec,
    /// RNG seed. `None` lets the service derive a deterministic seed from
    /// the job's content, so identical jobs dedupe across batches.
    pub seed: Option<u64>,
}

impl CompressionJob {
    /// A job with a content-derived seed.
    pub fn new(
        name: impl Into<String>,
        weight: Tensor,
        algo: impl Into<String>,
        spec: PipelineSpec,
    ) -> CompressionJob {
        CompressionJob { name: name.into(), weight, algo: algo.into(), spec, seed: None }
    }

    /// Pins the RNG seed (the seed becomes part of the cache identity).
    pub fn with_seed(mut self, seed: u64) -> CompressionJob {
        self.seed = Some(seed);
        self
    }
}

/// The served result of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's label, as submitted.
    pub name: String,
    /// The content address the job resolved to.
    pub key: CacheKey,
    /// The compressed artifact.
    pub artifact: CompressedArtifact,
    /// True when the artifact came from the cache rather than a fresh
    /// compression in this batch.
    pub from_cache: bool,
    /// True when this job shared another in-batch job's compression
    /// (identical key) instead of running its own.
    pub deduped: bool,
}

/// What one [`BatchCompressionService::submit`] call did.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Distinct cache keys in the batch.
    pub unique_jobs: usize,
    /// Jobs answered by sharing an identical in-batch job.
    pub deduped_jobs: usize,
    /// Unique jobs answered from the cache.
    pub cache_hits: usize,
    /// Unique jobs compressed fresh in this batch.
    pub compressed: usize,
}

/// The batch compression service: a content-addressed cache plus a
/// deduplicating, rayon-parallel fan-out over the pipeline registry.
pub struct BatchCompressionService {
    cache: ArtifactCache,
}

impl BatchCompressionService {
    /// A service over a purely in-memory cache.
    pub fn in_memory() -> BatchCompressionService {
        BatchCompressionService { cache: ArtifactCache::in_memory() }
    }

    /// A service whose cache persists blobs under `dir`, surviving
    /// restarts.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation errors.
    pub fn with_cache_dir<P: AsRef<Path>>(dir: P) -> Result<BatchCompressionService, MvqError> {
        Ok(BatchCompressionService { cache: ArtifactCache::with_dir(dir)? })
    }

    /// A service over an existing cache.
    pub fn with_cache(cache: ArtifactCache) -> BatchCompressionService {
        BatchCompressionService { cache }
    }

    /// The underlying cache (for stats and direct lookups).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Cache traffic counters accumulated over the service's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serves a batch: resolves every job to its content address, answers
    /// what it can from the cache, compresses the remaining *unique* jobs
    /// rayon-parallel (duplicates ride along for free), stores the fresh
    /// artifacts, and reports per-job outcomes in submission order.
    ///
    /// Deterministic end to end: the same batch — in any order, serial or
    /// parallel — produces bit-identical artifacts and the same
    /// unique/dedupe/hit counts.
    ///
    /// # Errors
    ///
    /// Returns the first job validation, compression, or cache error.
    pub fn submit(&self, jobs: Vec<CompressionJob>) -> Result<BatchReport, MvqError> {
        // resolve identities in submission order
        let mut keys: Vec<CacheKey> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            let seed = job.seed.unwrap_or_else(|| content_seed(job));
            keys.push(CacheKey::new(&job.algo, &job.weight, &job.spec, seed)?);
        }

        // dedupe: first job with a given key is its representative
        let mut representative: HashMap<&CacheKey, usize> = HashMap::new();
        for (idx, key) in keys.iter().enumerate() {
            representative.entry(key).or_insert(idx);
        }

        // answer representatives from the cache; the rest compress fresh
        let mut pending: Vec<usize> = Vec::new();
        let mut served: HashMap<usize, (CompressedArtifact, bool)> = HashMap::new();
        for (&key, &idx) in &representative {
            match self.cache.get(key)? {
                Some(artifact) => {
                    served.insert(idx, (artifact, true));
                }
                None => pending.push(idx),
            }
        }
        pending.sort_unstable(); // deterministic fan-out order
        let cache_hits = served.len();
        let compressed = pending.len();

        let fresh: Vec<(usize, CompressedArtifact)> = pending
            .into_par_iter()
            .map(|idx: usize| -> Result<(usize, CompressedArtifact), MvqError> {
                let job = &jobs[idx];
                let comp = by_name(&job.algo, &job.spec)?;
                let mut rng = StdRng::seed_from_u64(keys[idx].seed);
                Ok((idx, comp.compress_matrix(&job.weight, &mut rng)?))
            })
            .collect::<Result<Vec<_>, MvqError>>()?;
        for (idx, artifact) in fresh {
            self.cache.put(&keys[idx], &artifact)?;
            served.insert(idx, (artifact, false));
        }

        // assemble per-job outcomes in submission order
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut deduped_jobs = 0usize;
        for (idx, (job, key)) in jobs.iter().zip(&keys).enumerate() {
            let rep = representative[key];
            let deduped = rep != idx;
            if deduped {
                deduped_jobs += 1;
            }
            let (artifact, from_cache) = served[&rep].clone();
            outcomes.push(JobOutcome {
                name: job.name.clone(),
                key: key.clone(),
                artifact,
                from_cache,
                deduped,
            });
        }
        Ok(BatchReport {
            outcomes,
            unique_jobs: representative.len(),
            deduped_jobs,
            cache_hits,
            compressed,
        })
    }
}

/// Deterministic seed for an unseeded job, derived from its content
/// identity — the same weight/spec/algorithm always compresses with the
/// same RNG stream, so unseeded jobs dedupe and cache across batches and
/// processes. The algorithm is folded in *canonicalized* (aliases like
/// `vq` must derive the same seed as `vq-a`); unknown names fall back to
/// the raw string and are rejected by `CacheKey::new` right after.
fn content_seed(job: &CompressionJob) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"mvq.serve.contentseed.v1");
    h.update_u64(mvq_core::weight_hash(&job.weight));
    h.update_u64(job.spec.fingerprint());
    h.update(canonical_name(&job.algo).unwrap_or(&job.algo).as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        mvq_tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
    }

    fn spec() -> PipelineSpec {
        PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() }
    }

    #[test]
    fn batch_dedupes_identical_jobs() {
        let service = BatchCompressionService::in_memory();
        let w = weight(0);
        let jobs = vec![
            CompressionJob::new("a", w.clone(), "mvq", spec()),
            CompressionJob::new("b", w.clone(), "mvq", spec()),
            CompressionJob::new("c", w, "vq-a", spec()),
        ];
        let report = service.submit(jobs).unwrap();
        assert_eq!(report.unique_jobs, 2);
        assert_eq!(report.deduped_jobs, 1);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.compressed, 2);
        assert!(report.outcomes[1].deduped);
        let bits = |a: &CompressedArtifact| {
            a.reconstruct().unwrap().data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(bits(&report.outcomes[0].artifact), bits(&report.outcomes[1].artifact));
    }

    #[test]
    fn second_batch_is_all_hits() {
        let service = BatchCompressionService::in_memory();
        let jobs = || vec![CompressionJob::new("a", weight(1), "mvq", spec())];
        let first = service.submit(jobs()).unwrap();
        assert_eq!(first.cache_hits, 0);
        let second = service.submit(jobs()).unwrap();
        assert_eq!(second.cache_hits, 1);
        assert_eq!(second.compressed, 0);
        assert!(second.outcomes[0].from_cache);
    }

    #[test]
    fn pinned_seeds_split_identity() {
        let service = BatchCompressionService::in_memory();
        let w = weight(2);
        let jobs = vec![
            CompressionJob::new("a", w.clone(), "mvq", spec()).with_seed(1),
            CompressionJob::new("b", w, "mvq", spec()).with_seed(2),
        ];
        let report = service.submit(jobs).unwrap();
        assert_eq!(report.unique_jobs, 2);
        assert_eq!(report.deduped_jobs, 0);
    }

    #[test]
    fn alias_and_canonical_name_are_one_identity() {
        // `vq` is the documented alias of `vq-a`: unseeded jobs under
        // either spelling must derive the same content seed, hence the
        // same cache key, and dedupe into one compression
        let service = BatchCompressionService::in_memory();
        let w = weight(4);
        let jobs = vec![
            CompressionJob::new("alias", w.clone(), "vq", spec()),
            CompressionJob::new("canonical", w, "vq-a", spec()),
        ];
        let report = service.submit(jobs).unwrap();
        assert_eq!(report.unique_jobs, 1);
        assert_eq!(report.deduped_jobs, 1);
        assert_eq!(report.outcomes[0].key, report.outcomes[1].key);
    }

    #[test]
    fn unknown_algo_is_a_typed_error() {
        let service = BatchCompressionService::in_memory();
        let jobs = vec![CompressionJob::new("a", weight(3), "vqgan", spec())];
        assert!(matches!(service.submit(jobs), Err(MvqError::InvalidConfig(_))));
    }
}
