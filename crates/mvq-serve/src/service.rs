//! The long-lived compression service: a hand-rolled worker-thread pool
//! over std channels, a bounded priority queue for admission control, and
//! per-job error isolation.
//!
//! No async runtime is involved (the workspace vendors no tokio): workers
//! are plain `std::thread`s parked on a condvar, results travel over
//! per-job `std::sync::mpsc` channels, and backpressure is a bounded
//! queue whose `submit_one` blocks (or `try_submit_one` refuses) while
//! full.

use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mvq_core::pipeline::{by_name, PipelineSpec};
use mvq_core::store::{ArtifactCache, CacheBudget, CacheKey, CacheStats, Persist, DEFAULT_SHARDS};
use mvq_core::{
    load_streamed_model, model_cache_key, stream_compress_model, MvqError, ProgressHandle,
    StreamConfig,
};
use mvq_nn::Sequential;
use mvq_obs::{names as metric, Registry, Stage, Trace, TraceOutcome};
use mvq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::request::{CacheMode, CompressionRequest, ModelCompressionRequest, Priority};
use crate::ticket::{CancelKind, CancelToken, JobError, JobOutcome, JobResult, Payload, Ticket};

/// Cache policy the service applies to the cache it builds: a thin,
/// service-facing wrapper over [`CacheBudget`] plus the shard count
/// (ignored when the builder is handed a pre-built cache, which carries
/// its own budget and sharding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CachePolicy {
    /// The byte budget; `CacheBudget::UNBOUNDED` (the default) preserves
    /// the grow-forever behavior.
    pub budget: CacheBudget,
    /// Lock domains the cache is split into; `None` (the default) uses
    /// [`DEFAULT_SHARDS`]. `Some(1)` reproduces the single-lock layout
    /// (the benchmark baseline).
    pub shards: Option<usize>,
}

impl CachePolicy {
    /// No budgets — the cache grows without bound.
    pub const UNBOUNDED: CachePolicy = CachePolicy { budget: CacheBudget::UNBOUNDED, shards: None };

    /// Caps the cache's in-memory footprint at `bytes`.
    pub fn with_memory_budget(mut self, bytes: u64) -> CachePolicy {
        self.budget.memory_bytes = Some(bytes);
        self
    }

    /// Caps the cache's on-disk footprint at `bytes`.
    pub fn with_disk_budget(mut self, bytes: u64) -> CachePolicy {
        self.budget.disk_bytes = Some(bytes);
        self
    }

    /// Splits the cache into `shards` lock domains (clamped to ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> CachePolicy {
        self.shards = Some(shards);
        self
    }
}

/// Why a non-blocking submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at capacity. The request rides back in the error so
    /// the caller can retry it without rebuilding (boxed to keep the
    /// `Err` variant small on the happy path).
    QueueFull {
        /// The queue capacity that was hit.
        capacity: usize,
        /// The refused request, returned intact.
        request: Box<CompressionRequest>,
    },
    /// The queue is at capacity; the refused whole-model request rides
    /// back ([`crate::CompressionService::try_submit_model`]).
    ModelQueueFull {
        /// The queue capacity that was hit.
        capacity: usize,
        /// The refused request, returned intact.
        request: Box<ModelCompressionRequest>,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, request } => write!(
                f,
                "queue full ({capacity} jobs queued): request `{}` refused",
                request.name()
            ),
            SubmitError::ModelQueueFull { capacity, request } => write!(
                f,
                "queue full ({capacity} jobs queued): model request `{}` refused",
                request.name()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What a queued job compresses: one weight matrix (the original request
/// kind) or a whole model streamed through the bounded-window pipeline.
enum JobPayload {
    /// Compress one weight tensor via `Compressor::compress_matrix`.
    Matrix { weight: Tensor },
    /// Stream every conv of a model, spilling per-layer blobs to the
    /// cache; `progress` is shared with every ticket observing the job.
    Model { model: Sequential, stream: StreamConfig, progress: ProgressHandle },
}

/// One queued unit of work. Normal jobs keep their waiters in the shared
/// in-flight map (so identical submissions can attach); bypass jobs carry
/// their single waiter inline and are invisible to dedup.
struct QueuedJob {
    key: CacheKey,
    algo: &'static str,
    spec: PipelineSpec,
    payload: JobPayload,
    mode: CacheMode,
    direct: Option<Waiter>,
    /// The submitting waiter's lifecycle trace (shared `Arc`): workers
    /// stamp the execution stages (dequeue, cache probe, kernel, encode,
    /// cached) on it as the job moves through the pipeline.
    trace: Trace,
}

struct Waiter {
    name: String,
    tx: mpsc::Sender<JobResult>,
    /// Cancelling any clone marks this waiter dead; a job whose waiters
    /// are all dead is dropped at dequeue.
    cancel: Option<CancelToken>,
    /// Absolute queue deadline; past it the waiter is dead.
    deadline: Option<Instant>,
    /// This submission's lifecycle trace. The primary submitter shares
    /// its trace with the job; dedup riders carry their own (marked
    /// deduped, stamping only submit and reply).
    trace: Trace,
}

impl Waiter {
    /// Why this waiter no longer wants the job, if so. Explicit
    /// cancellation wins over deadline expiry when both apply.
    fn dead(&self, now: Instant) -> Option<CancelKind> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(CancelKind::Explicit);
        }
        if self.deadline.is_some_and(|d| d <= now) {
            return Some(CancelKind::DeadlineExpired);
        }
        None
    }
}

/// A heap entry pointing at a queued job. Jobs live in `State::jobs`;
/// the heap only orders (priority, seq) references, so a deduped rider
/// with a higher priority can *boost* an already-queued job by pushing a
/// second, higher-ranked reference — the job runs at the highest
/// priority any of its waiters asked for, and the outranked reference is
/// skipped as stale when popped.
#[derive(PartialEq, Eq)]
struct QueueRef {
    priority: Priority,
    seq: u64,
}

impl PartialOrd for QueueRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueRef {
    /// Max-heap order: higher priority first, then FIFO within a
    /// priority (lower sequence number = greater).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Book-keeping for one in-flight (queued or running) non-bypass job.
struct InflightEntry {
    /// Index 0 is the submitter whose request is executing; later
    /// entries are deduped riders.
    waiters: Vec<Waiter>,
    /// `Some((seq, effective priority))` while the job is still queued —
    /// the handle riders use to boost it; `None` once a worker took it.
    queued: Option<(u64, Priority)>,
    /// The executing job's progress handle (model jobs only) — riders
    /// clone it into their tickets so every waiter observes the same
    /// per-layer counters.
    progress: Option<ProgressHandle>,
}

#[derive(Default)]
struct State {
    heap: BinaryHeap<QueueRef>,
    /// Queued jobs by sequence number; `jobs.len()` (not the heap size,
    /// which may carry stale boost references) is the admission-control
    /// queue length.
    jobs: HashMap<u64, QueuedJob>,
    inflight: HashMap<CacheKey, InflightEntry>,
    shutdown: bool,
}

impl State {
    /// Pops the highest-priority queued job, skipping references whose
    /// job was already taken via a boosted duplicate.
    fn pop_job(&mut self) -> Option<QueuedJob> {
        while let Some(r) = self.heap.pop() {
            if let Some(job) = self.jobs.remove(&r.seq) {
                if job.direct.is_none() {
                    if let Some(entry) = self.inflight.get_mut(&job.key) {
                        entry.queued = None; // running now; boosts are moot
                    }
                }
                return Some(job);
            }
        }
        None
    }

    /// Pops the highest-priority queued job whose waiters still want it,
    /// dropping cancelled/expired work on the way: a popped job whose
    /// waiters are **all** dead is discarded without running (this is the
    /// dequeue-time cancellation check — cancelled work never occupies a
    /// worker), and dead riders on an otherwise-live job are peeled off.
    /// Returns the job (if any), the dead waiters to notify — **outside**
    /// the service lock — with why each died, and how many queued jobs
    /// were discarded (each freed a queue slot, so the caller signals
    /// `space`).
    fn pop_live_job(
        &mut self,
        now: Instant,
    ) -> (Option<QueuedJob>, Vec<(Waiter, CancelKind)>, usize) {
        let mut dead: Vec<(Waiter, CancelKind)> = Vec::new();
        let mut dropped = 0;
        while let Some(job) = self.pop_job() {
            let QueuedJob { key, algo, spec, payload, mode, direct, trace } = job;
            match direct {
                Some(waiter) => match waiter.dead(now) {
                    Some(kind) => {
                        dead.push((waiter, kind));
                        dropped += 1;
                    }
                    None => {
                        let job = QueuedJob {
                            key,
                            algo,
                            spec,
                            payload,
                            mode,
                            direct: Some(waiter),
                            trace,
                        };
                        return (Some(job), dead, dropped);
                    }
                },
                None => {
                    let Some(entry) = self.inflight.get_mut(&key) else {
                        // the entry was already removed (e.g. by a racing
                        // shutdown drain); nothing waits, drop the job
                        dropped += 1;
                        continue;
                    };
                    let mut live = Vec::with_capacity(entry.waiters.len());
                    for waiter in entry.waiters.drain(..) {
                        match waiter.dead(now) {
                            Some(kind) => dead.push((waiter, kind)),
                            None => live.push(waiter),
                        }
                    }
                    if live.is_empty() {
                        self.inflight.remove(&key);
                        dropped += 1;
                        continue;
                    }
                    entry.waiters = live;
                    let job = QueuedJob { key, algo, spec, payload, mode, direct: None, trace };
                    return (Some(job), dead, dropped);
                }
            }
        }
        (None, dead, dropped)
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that the queue gained a job (or shutdown began).
    work: Condvar,
    /// Signals blocked submitters that the queue lost a job.
    space: Condvar,
    capacity: usize,
    cache: Arc<ArtifactCache>,
    /// The cache's metrics registry, adopted by the service so the
    /// whole serving stack (cache, queue, workers, and any network
    /// front built on top) records into one place.
    metrics: Arc<Registry>,
    seq: AtomicU64,
}

/// The long-lived compression service: a content-addressed (optionally
/// byte-budgeted) artifact cache behind a worker pool that executes
/// [`CompressionRequest`]s with per-job outcomes.
///
/// * [`CompressionService::submit_one`] returns a [`Ticket`] immediately
///   (blocking only while the bounded queue is full);
///   [`CompressionService::try_submit_one`] refuses instead of blocking.
/// * One bad job reports a typed [`JobError`] on its own ticket; every
///   other job is untouched — there is no batch to abort.
/// * Identical non-bypass jobs in flight (same [`CacheKey`]) share one
///   compression; riders see `deduped: true`.
/// * Work is deterministic end to end: a job's artifact depends only on
///   its key (weight, spec, algorithm, kernel, seed), never on worker
///   interleaving, queue order, or cache state — a cache hit is
///   bit-identical to recompressing.
///
/// Dropping the service drains the queue gracefully: queued jobs still
/// run (on a zero-worker service they resolve to
/// [`JobError::Disconnected`] instead), then workers exit.
pub struct CompressionService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CompressionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressionService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

/// Configures and builds a [`CompressionService`].
pub struct ServiceBuilder {
    workers: Option<usize>,
    queue_capacity: usize,
    cache_dir: Option<PathBuf>,
    cache: Option<ArtifactCache>,
    policy: CachePolicy,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder {
            workers: None,
            queue_capacity: 1024,
            cache_dir: None,
            cache: None,
            policy: CachePolicy::UNBOUNDED,
        }
    }
}

impl ServiceBuilder {
    /// Worker thread count. Defaults to the machine's available
    /// parallelism. `0` is allowed and means *no execution*: jobs queue
    /// (useful for deterministic admission-control tests) and resolve to
    /// [`JobError::Disconnected`] when the service drops.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Bound on *queued* (not yet running) jobs; `submit_one` blocks and
    /// `try_submit_one` refuses while the queue is full. Must be ≥ 1.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Persist cache blobs under `dir` (created if absent), surviving
    /// restarts.
    pub fn cache_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.cache_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Use a pre-built cache (it carries its own budget; setting a
    /// [`CachePolicy`] too is rejected at build).
    pub fn cache(mut self, cache: ArtifactCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Byte budgets for the cache the builder creates.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the service and spawns its workers.
    ///
    /// # Errors
    ///
    /// Returns [`MvqError::InvalidConfig`] for a zero queue capacity or
    /// conflicting cache configuration, and [`MvqError::Codec`] when the
    /// cache directory cannot be created or scanned.
    pub fn build(self) -> Result<CompressionService, MvqError> {
        if self.queue_capacity == 0 {
            return Err(MvqError::InvalidConfig(
                "service queue capacity must be at least 1".into(),
            ));
        }
        let cache = match (self.cache, &self.cache_dir) {
            (Some(_), Some(_)) => {
                return Err(MvqError::InvalidConfig(
                    "give the service either a pre-built cache or a cache dir, not both".into(),
                ));
            }
            (Some(cache), None) => {
                if self.policy != CachePolicy::UNBOUNDED {
                    return Err(MvqError::InvalidConfig(
                        "a pre-built cache carries its own budget; set the policy on the cache"
                            .into(),
                    ));
                }
                cache
            }
            (None, Some(dir)) => ArtifactCache::with_dir_budget_and_shards(
                dir,
                self.policy.budget,
                self.policy.shards.unwrap_or(DEFAULT_SHARDS),
            )?,
            (None, None) => ArtifactCache::in_memory_sharded(
                self.policy.budget,
                self.policy.shards.unwrap_or(DEFAULT_SHARDS),
            ),
        };
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        let cache = Arc::new(cache);
        let metrics = Arc::clone(cache.registry());
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: self.queue_capacity,
            cache,
            metrics,
            seq: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mvq-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| {
                        MvqError::InvalidConfig(format!("cannot spawn service worker: {e}"))
                    })
            })
            .collect::<Result<Vec<_>, MvqError>>()?;
        Ok(CompressionService { shared, workers: handles })
    }
}

impl CompressionService {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A default-configured service over a purely in-memory cache.
    pub fn in_memory() -> CompressionService {
        ServiceBuilder::default().build().expect("default service config is valid")
    }

    /// A default-configured service whose cache persists blobs under
    /// `dir`, surviving restarts.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation/scan errors.
    pub fn with_cache_dir<P: AsRef<Path>>(dir: P) -> Result<CompressionService, MvqError> {
        ServiceBuilder::default().cache_dir(dir).build()
    }

    /// The underlying cache (for stats and direct lookups).
    pub fn cache(&self) -> &ArtifactCache {
        &self.shared.cache
    }

    /// Cache traffic counters and occupancy gauges.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The metrics registry (and completed-trace ring) shared by the
    /// cache and the service. A network front built over this service
    /// adopts the same registry, so one snapshot covers the whole
    /// serving stack.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.metrics
    }

    /// Worker threads executing jobs.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The bound on queued jobs.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs currently queued (excludes running jobs).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("service lock").jobs.len()
    }

    /// Begins shutdown without waiting for the workers: every waiter is
    /// woken — workers to drain the queue and exit, submitters blocked on
    /// a full queue to resolve their tickets to [`JobError::Disconnected`].
    /// Submissions after this point resolve to `Disconnected` immediately.
    /// Idempotent; [`Drop`] calls it before joining the workers.
    pub fn shutdown(&self) {
        self.shared.state.lock().expect("service lock").shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    /// Submits one request, blocking while the queue is full, and returns
    /// its [`Ticket`]. An identical non-bypass job already in flight is
    /// joined instead of queued (the rider's outcome reports
    /// `deduped: true`), so duplicates are immune to backpressure; a
    /// rider with a higher priority boosts the queued job to it, so a
    /// `High` request never waits behind `Normal` work just because a
    /// `Low` duplicate arrived first.
    pub fn submit_one(&self, request: CompressionRequest) -> Ticket {
        match self.enqueue(request, true) {
            Ok(ticket) => ticket,
            Err(_) => {
                // lint:allow(panic-path) -- enqueue(block = true) waits on the queue condvar instead of returning QueueFull; this arm only satisfies the shared signature
                unreachable!("blocking submission never reports a full queue")
            }
        }
    }

    /// Non-blocking [`CompressionService::submit_one`]: refuses with
    /// [`SubmitError::QueueFull`] — handing the request back — instead of
    /// waiting for queue space.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the queue is at capacity.
    pub fn try_submit_one(&self, request: CompressionRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, false)
    }

    fn enqueue(&self, request: CompressionRequest, block: bool) -> Result<Ticket, SubmitError> {
        let trace = Trace::begin(request.name());
        let seed = request.resolved_seed();
        let key = CacheKey::new(request.algo(), request.weight(), request.spec(), seed)
            .expect("request algo was canonicalized at build");
        // lint:allow(unbounded-channel) -- per-job result channel: carries at most one message per waiter, and queue depth itself is bounded by ServiceConfig
        let (tx, rx) = mpsc::channel();
        let mut state = self.shared.state.lock().expect("service lock");
        loop {
            // checked at the loop head so it covers both fresh submissions
            // and submitters woken from the `space` wait by a shutdown
            if state.shutdown {
                drop(state);
                self.shared.metrics.counter(metric::SERVE_JOBS_SUBMITTED).inc();
                let name = request.name().to_string();
                let _ = tx.send(Err(JobError::Disconnected { name: name.clone() }));
                trace.stamp(Stage::Replied);
                if let Some(snap) = trace.finish(TraceOutcome::Error) {
                    self.shared.metrics.traces().push(snap);
                }
                return Ok(Ticket::new(name, key, rx, None, trace));
            }
            if request.cache_mode().dedupes() {
                if let Some(entry) = state.inflight.get_mut(&key) {
                    let name = request.name().to_string();
                    trace.mark_deduped();
                    entry.waiters.push(Waiter {
                        name: name.clone(),
                        tx,
                        cancel: request.cancel().cloned(),
                        deadline: request.deadline(),
                        trace: trace.clone(),
                    });
                    let progress = entry.progress.clone();
                    // boost a still-queued job to the rider's priority
                    if let Some((seq, current)) = entry.queued {
                        if request.priority() > current {
                            entry.queued = Some((seq, request.priority()));
                            state.heap.push(QueueRef { priority: request.priority(), seq });
                        }
                    }
                    drop(state);
                    self.shared.metrics.counter(metric::SERVE_JOBS_SUBMITTED).inc();
                    self.shared.metrics.counter(metric::SERVE_JOBS_DEDUPED).inc();
                    return Ok(Ticket::new(name, key, rx, progress, trace));
                }
            }
            if state.jobs.len() < self.shared.capacity {
                break;
            }
            if !block {
                return Err(SubmitError::QueueFull {
                    capacity: self.shared.capacity,
                    request: Box::new(request),
                });
            }
            state = self.shared.space.wait(state).expect("service lock");
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let priority = request.priority();
        let mode = request.cache_mode();
        let (name, weight, algo, spec, deadline, cancel) = request.into_parts();
        let waiter = Waiter { name: name.clone(), tx, cancel, deadline, trace: trace.clone() };
        let direct = if mode.dedupes() {
            state.inflight.insert(
                key.clone(),
                InflightEntry {
                    waiters: vec![waiter],
                    queued: Some((seq, priority)),
                    progress: None,
                },
            );
            None
        } else {
            Some(waiter)
        };
        let payload = JobPayload::Matrix { weight };
        trace.stamp(Stage::Queued);
        state.jobs.insert(
            seq,
            QueuedJob { key: key.clone(), algo, spec, payload, mode, direct, trace: trace.clone() },
        );
        state.heap.push(QueueRef { priority, seq });
        drop(state);
        self.shared.metrics.counter(metric::SERVE_JOBS_SUBMITTED).inc();
        self.shared.work.notify_one();
        Ok(Ticket::new(name, key, rx, None, trace))
    }

    /// Submits one whole-model streaming request, blocking while the
    /// queue is full, and returns its [`Ticket`]. The job streams the
    /// model's convs through the bounded-window pipeline
    /// ([`mvq_core::stream_compress_model`]), spilling each finished
    /// layer to the service's cache; [`Ticket::progress`] observes the
    /// per-layer counters while the job runs, and the outcome decodes via
    /// [`JobOutcome::model_artifacts`](crate::JobOutcome::model_artifacts).
    ///
    /// Identical in-flight model jobs (same model key) share one
    /// streaming run — riders' tickets observe the same progress.
    pub fn submit_model(&self, request: ModelCompressionRequest) -> Ticket {
        match self.enqueue_model(request, true) {
            Ok(ticket) => ticket,
            Err(_) => {
                // lint:allow(panic-path) -- enqueue_model(block = true) waits on the queue condvar instead of returning QueueFull; this arm only satisfies the shared signature
                unreachable!("blocking submission never reports a full queue")
            }
        }
    }

    /// Non-blocking [`CompressionService::submit_model`]: refuses with
    /// [`SubmitError::ModelQueueFull`] — handing the request back —
    /// instead of waiting for queue space.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::ModelQueueFull`] when the queue is at
    /// capacity.
    pub fn try_submit_model(
        &self,
        request: ModelCompressionRequest,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue_model(request, false)
    }

    fn enqueue_model(
        &self,
        request: ModelCompressionRequest,
        block: bool,
    ) -> Result<Ticket, SubmitError> {
        let trace = Trace::begin(request.name());
        let seed = request.resolved_seed();
        let key = model_cache_key(request.algo(), request.model(), request.spec(), seed)
            .expect("request algo was canonicalized at build");
        // lint:allow(unbounded-channel) -- per-job result channel: carries at most one message per waiter, and queue depth itself is bounded by ServiceConfig
        let (tx, rx) = mpsc::channel();
        let progress = ProgressHandle::new();
        let mut state = self.shared.state.lock().expect("service lock");
        loop {
            if state.shutdown {
                drop(state);
                self.shared.metrics.counter(metric::SERVE_JOBS_SUBMITTED).inc();
                let name = request.name().to_string();
                let _ = tx.send(Err(JobError::Disconnected { name: name.clone() }));
                trace.stamp(Stage::Replied);
                if let Some(snap) = trace.finish(TraceOutcome::Error) {
                    self.shared.metrics.traces().push(snap);
                }
                return Ok(Ticket::new(name, key, rx, Some(progress), trace));
            }
            // model jobs always dedupe (they are never cache-bypassing)
            if let Some(entry) = state.inflight.get_mut(&key) {
                let name = request.name().to_string();
                trace.mark_deduped();
                entry.waiters.push(Waiter {
                    name: name.clone(),
                    tx,
                    cancel: request.cancel().cloned(),
                    deadline: request.deadline(),
                    trace: trace.clone(),
                });
                let progress = entry.progress.clone();
                if let Some((seq, current)) = entry.queued {
                    if request.priority() > current {
                        entry.queued = Some((seq, request.priority()));
                        state.heap.push(QueueRef { priority: request.priority(), seq });
                    }
                }
                drop(state);
                self.shared.metrics.counter(metric::SERVE_JOBS_SUBMITTED).inc();
                self.shared.metrics.counter(metric::SERVE_JOBS_DEDUPED).inc();
                return Ok(Ticket::new(name, key, rx, progress, trace));
            }
            if state.jobs.len() < self.shared.capacity {
                break;
            }
            if !block {
                return Err(SubmitError::ModelQueueFull {
                    capacity: self.shared.capacity,
                    request: Box::new(request),
                });
            }
            state = self.shared.space.wait(state).expect("service lock");
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let priority = request.priority();
        let (name, model, algo, spec, stream, deadline, cancel) = request.into_parts();
        let waiter = Waiter { name: name.clone(), tx, cancel, deadline, trace: trace.clone() };
        state.inflight.insert(
            key.clone(),
            InflightEntry {
                waiters: vec![waiter],
                queued: Some((seq, priority)),
                progress: Some(progress.clone()),
            },
        );
        let payload = JobPayload::Model { model, stream, progress: progress.clone() };
        trace.stamp(Stage::Queued);
        state.jobs.insert(
            seq,
            QueuedJob {
                key: key.clone(),
                algo,
                spec,
                payload,
                mode: CacheMode::ReadWrite,
                direct: None,
                trace: trace.clone(),
            },
        );
        state.heap.push(QueueRef { priority, seq });
        drop(state);
        self.shared.metrics.counter(metric::SERVE_JOBS_SUBMITTED).inc();
        self.shared.work.notify_one();
        Ok(Ticket::new(name, key, rx, Some(progress), trace))
    }
}

impl Drop for CompressionService {
    /// Graceful drain: workers finish every queued job, then exit. With
    /// zero workers the queue is abandoned and outstanding tickets
    /// resolve to [`JobError::Disconnected`]. Submitters blocked on a
    /// full queue are woken too, so drop never strands a thread in
    /// `submit_one`.
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (job, dead) = {
            let mut state = shared.state.lock().expect("service lock");
            loop {
                let (job, dead, dropped) = state.pop_live_job(Instant::now());
                if dropped > 0 {
                    // each discarded job freed a queue slot
                    shared.space.notify_all();
                } else if job.is_some() {
                    shared.space.notify_one();
                }
                if job.is_some() || !dead.is_empty() {
                    break (job, dead);
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("service lock");
            }
        };
        // notify outside the lock: a waiter's receiver may be dropped, and
        // channel sends must never extend the queue critical section
        for (waiter, kind) in dead {
            waiter.trace.stamp(Stage::Replied);
            let outcome = match kind {
                CancelKind::Explicit => TraceOutcome::CancelledExplicit,
                CancelKind::DeadlineExpired => TraceOutcome::CancelledDeadline,
            };
            if let Some(snap) = waiter.trace.finish(outcome) {
                shared.metrics.traces().push(snap);
            }
            shared.metrics.counter(metric::SERVE_JOBS_CANCELLED).inc();
            let _ = waiter.tx.send(Err(JobError::Cancelled { name: waiter.name, kind }));
        }
        if let Some(job) = job {
            job.trace.stamp(Stage::Dequeued);
            if let (Some(q), Some(d)) =
                (job.trace.stage_us(Stage::Queued), job.trace.stage_us(Stage::Dequeued))
            {
                shared.metrics.histogram(metric::SERVE_QUEUE_WAIT_US).record(d.saturating_sub(q));
            }
            execute(shared, job);
        }
    }
}

/// What went wrong, before it is fanned out to (possibly several) waiters
/// with their own names.
enum FailureKind {
    Compression(MvqError),
    Cache(MvqError),
    Panicked(String),
}

impl FailureKind {
    fn into_job_error(self, name: String) -> JobError {
        match self {
            FailureKind::Compression(source) => JobError::Compression { name, source },
            FailureKind::Cache(source) => JobError::Cache { name, source },
            FailureKind::Panicked(detail) => JobError::Panicked { name, detail },
        }
    }
}

impl Clone for FailureKind {
    fn clone(&self) -> FailureKind {
        match self {
            FailureKind::Compression(e) => FailureKind::Compression(e.clone()),
            FailureKind::Cache(e) => FailureKind::Cache(e.clone()),
            FailureKind::Panicked(d) => FailureKind::Panicked(d.clone()),
        }
    }
}

fn execute(shared: &Shared, job: QueuedJob) {
    let result: Result<(Payload, bool), FailureKind> = run_job(shared, &job);
    let from_cache = matches!(&result, Ok((_, true)));
    // deliver to every waiter; the first is the submitter whose request
    // executed, later ones are deduped riders
    let waiters = match job.direct {
        Some(waiter) => vec![waiter],
        None => shared
            .state
            .lock()
            .expect("service lock")
            .inflight
            .remove(&job.key)
            .map(|entry| entry.waiters)
            .unwrap_or_default(),
    };
    let outcome = if result.is_ok() { TraceOutcome::Ok } else { TraceOutcome::Error };
    // settle ALL accounting (traces, counters, histograms) before any
    // waiter is notified: the instant a `tx.send` lands, `Ticket::wait`
    // returns and the caller may read the registry — every metric this
    // job owes must already be there
    let notifications: Vec<_> = waiters
        .into_iter()
        .enumerate()
        .map(|(i, waiter)| {
            let Waiter { name, tx, trace, .. } = waiter;
            let message = match &result {
                // cloning a `Payload::Bytes` clones the `Arc`, not the
                // blob — every rider shares the one validated allocation
                Ok((payload, from_cache)) => {
                    Ok(JobOutcome::new(name, job.key.clone(), payload.clone(), *from_cache, i > 0))
                }
                Err(kind) => Err(kind.clone().into_job_error(name)),
            };
            trace.stamp(Stage::Replied);
            if let Some(snap) = trace.finish(outcome) {
                shared.metrics.traces().push(snap);
            }
            (tx, message)
        })
        .collect();
    shared.metrics.counter(metric::SERVE_JOBS_COMPLETED).inc();
    // the primary waiter shares the job trace, so its reply stamp dates
    // the end of the run (a peeled-dead primary leaves the stamp from
    // its cancellation notice; the saturating diff reads as 0)
    if let (Some(d), Some(r)) =
        (job.trace.stage_us(Stage::Dequeued), job.trace.stage_us(Stage::Replied))
    {
        shared.metrics.histogram(metric::SERVE_JOB_RUN_US).record(r.saturating_sub(d));
    }
    if from_cache {
        shared.metrics.histogram(metric::SERVE_HIT_LATENCY_US).record(job.trace.elapsed_us());
    }
    for (tx, message) in notifications {
        // a dropped ticket abandons its result; that is not an error
        let _ = tx.send(message);
    }
}

/// Runs one job: cache lookup (per the job's mode), fresh compression on
/// a miss, cache store. The payload is paired with a `from_cache` flag.
///
/// Cache-touching jobs travel as encoded bytes end to end: a hit hands
/// back the cache's shared `Arc` blob, a miss encodes once and shares
/// that same blob with the cache and every waiter. Only bypass jobs —
/// which never encode — carry a decoded artifact.
fn run_job(shared: &Shared, job: &QueuedJob) -> Result<(Payload, bool), FailureKind> {
    let weight = match &job.payload {
        JobPayload::Matrix { weight } => weight,
        JobPayload::Model { model, stream, progress } => {
            return run_model_job(shared, job, model, stream, progress);
        }
    };
    if job.mode.reads_cache() {
        let probe = shared.cache.get_raw(&job.key);
        job.trace.stamp(Stage::CacheProbe);
        match probe {
            Ok(Some(bytes)) => return Ok((Payload::Bytes(bytes), true)),
            Ok(None) => {}
            Err(e) => return Err(FailureKind::Cache(e)),
        }
        // a deterministic job's remembered failure is as authoritative as
        // a cached artifact: fail fast instead of re-running the pipeline
        if let Some(remembered) = shared.cache.failure(&job.key) {
            return Err(FailureKind::Compression(remembered));
        }
    }
    let compressor = by_name(job.algo, &job.spec).map_err(FailureKind::Compression)?;
    let compressed = match catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(job.key.seed);
        compressor.compress_matrix(weight, &mut rng)
    }))
    .map_err(|payload| FailureKind::Panicked(panic_detail(payload)))?
    {
        Ok(compressed) => compressed,
        Err(e) => {
            // seeded pipelines fail deterministically; remember the
            // failure so identical requests short-circuit (a later
            // successful put for the key heals it)
            if job.mode.writes_cache() {
                shared.cache.note_failure(&job.key, &e);
            }
            return Err(FailureKind::Compression(e));
        }
    };
    job.trace.stamp(Stage::Kernel);
    if job.mode.writes_cache() {
        let bytes: Arc<[u8]> = match compressed.to_bytes() {
            Ok(bytes) => bytes.into(),
            Err(e) => return Err(FailureKind::Compression(e)),
        };
        job.trace.stamp(Stage::Encode);
        shared.cache.put_raw(&job.key, Arc::clone(&bytes)).map_err(FailureKind::Cache)?;
        job.trace.stamp(Stage::Cached);
        return Ok((Payload::Bytes(bytes), false));
    }
    Ok((Payload::Artifact(compressed), false))
}

/// Runs one whole-model streaming job. Model jobs are always read-write:
/// a hit on the stored [`mvq_core::store::ModelIndex`] (with every layer
/// blob still resident) reassembles from the cache; a miss streams the
/// model through [`stream_compress_model`], which spills each layer as
/// its own blob, then assembles the payload from what was just spilled.
fn run_model_job(
    shared: &Shared,
    job: &QueuedJob,
    model: &Sequential,
    stream: &StreamConfig,
    progress: &ProgressHandle,
) -> Result<(Payload, bool), FailureKind> {
    let probe = load_streamed_model(&shared.cache, &job.key);
    job.trace.stamp(Stage::CacheProbe);
    match probe {
        Ok(Some(arts)) => {
            let bytes: Arc<[u8]> = arts.to_bytes().map_err(FailureKind::Cache)?.into();
            return Ok((Payload::Bytes(bytes), true));
        }
        Ok(None) => {}
        Err(e) => return Err(FailureKind::Cache(e)),
    }
    if let Some(remembered) = shared.cache.failure(&job.key) {
        return Err(FailureKind::Compression(remembered));
    }
    let compressor = by_name(job.algo, &job.spec).map_err(FailureKind::Compression)?;
    match catch_unwind(AssertUnwindSafe(|| {
        stream_compress_model(
            compressor.as_ref(),
            model,
            &shared.cache,
            &job.key,
            stream,
            Some(progress),
        )
    }))
    .map_err(|payload| FailureKind::Panicked(panic_detail(payload)))?
    {
        Ok(_report) => {}
        Err(e) => {
            shared.cache.note_failure(&job.key, &e);
            return Err(FailureKind::Compression(e));
        }
    }
    job.trace.stamp(Stage::Kernel);
    match load_streamed_model(&shared.cache, &job.key) {
        Ok(Some(arts)) => {
            let bytes: Arc<[u8]> = arts.to_bytes().map_err(FailureKind::Cache)?.into();
            // the stream spilled every layer blob as it finished, so by
            // the time assembly succeeds the result is both encoded and
            // cache-resident
            job.trace.stamp(Stage::Encode);
            job.trace.stamp(Stage::Cached);
            Ok((Payload::Bytes(bytes), false))
        }
        // the cache budget evicted layers faster than the job streamed
        // them — loud, because a "successful" job must carry its result
        Ok(None) => Err(FailureKind::Cache(MvqError::Codec(
            "streamed layer blobs were evicted before the result could be assembled; \
             raise the cache budget above the model's compressed size"
                .into(),
        ))),
        Err(e) => Err(FailureKind::Cache(e)),
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_job(state: &mut State, seq: u64, priority: Priority) {
        let weight = Tensor::ones(vec![16, 16]);
        let spec = PipelineSpec::default();
        let key = CacheKey::new("mvq", &weight, &spec, seq).unwrap();
        state.jobs.insert(
            seq,
            QueuedJob {
                key,
                algo: "mvq",
                spec,
                payload: JobPayload::Matrix { weight },
                mode: CacheMode::ReadWrite,
                direct: None,
                trace: Trace::begin("test"),
            },
        );
        state.heap.push(QueueRef { priority, seq });
    }

    #[test]
    fn queue_pops_by_priority_then_fifo() {
        let mut state = State::default();
        push_job(&mut state, 0, Priority::Low);
        push_job(&mut state, 1, Priority::Normal);
        push_job(&mut state, 2, Priority::High);
        push_job(&mut state, 3, Priority::Normal);
        let order: Vec<u64> = std::iter::from_fn(|| state.pop_job().map(|j| j.key.seed)).collect();
        assert_eq!(order, vec![2, 1, 3, 0], "high first, FIFO within priority, low last");
    }

    #[test]
    fn boost_reference_outruns_the_original_priority() {
        // a Low job boosted to High (as a high-priority dedup rider would)
        // must pop before Normal work, and its stale Low reference must be
        // skipped rather than re-running the job
        let mut state = State::default();
        push_job(&mut state, 0, Priority::Low);
        push_job(&mut state, 1, Priority::Normal);
        state.heap.push(QueueRef { priority: Priority::High, seq: 0 });
        let order: Vec<u64> = std::iter::from_fn(|| state.pop_job().map(|j| j.key.seed)).collect();
        assert_eq!(order, vec![0, 1], "boosted job first, stale ref skipped");
        assert!(state.heap.is_empty() || state.jobs.is_empty());
    }

    /// Queues a bypass (direct-waiter) job carrying `cancel`/`deadline`,
    /// returning the waiter's result receiver.
    fn push_direct_job(
        state: &mut State,
        seq: u64,
        cancel: Option<CancelToken>,
        deadline: Option<Instant>,
    ) -> mpsc::Receiver<JobResult> {
        let weight = Tensor::ones(vec![16, 16]);
        let spec = PipelineSpec::default();
        let key = CacheKey::new("mvq", &weight, &spec, seq).unwrap();
        // lint:allow(unbounded-channel) -- test-only per-job result channel, one message
        let (tx, rx) = mpsc::channel();
        let waiter = Waiter {
            name: format!("job-{seq}"),
            tx,
            cancel,
            deadline,
            trace: Trace::begin("test"),
        };
        state.jobs.insert(
            seq,
            QueuedJob {
                key,
                algo: "mvq",
                spec,
                payload: JobPayload::Matrix { weight },
                mode: CacheMode::Bypass,
                direct: Some(waiter),
                trace: Trace::begin("test"),
            },
        );
        state.heap.push(QueueRef { priority: Priority::Normal, seq });
        rx
    }

    #[test]
    fn pop_live_job_discards_cancelled_and_expired_work_at_dequeue() {
        let mut state = State::default();
        let now = Instant::now();
        let token = CancelToken::new();
        let _rx_cancelled = push_direct_job(&mut state, 0, Some(token.clone()), None);
        let _rx_expired =
            push_direct_job(&mut state, 1, None, Some(now - std::time::Duration::from_millis(1)));
        let _rx_live =
            push_direct_job(&mut state, 2, None, Some(now + std::time::Duration::from_secs(60)));
        token.cancel();

        let (job, dead, dropped) = state.pop_live_job(now);
        let job = job.expect("the live job must still pop");
        assert_eq!(job.key.seed, 2, "only the un-cancelled, un-expired job runs");
        assert_eq!(dropped, 2, "both dead jobs freed their queue slots");
        let kinds: Vec<(String, CancelKind)> = dead.into_iter().map(|(w, k)| (w.name, k)).collect();
        assert_eq!(
            kinds,
            vec![
                ("job-0".to_string(), CancelKind::Explicit),
                ("job-1".to_string(), CancelKind::DeadlineExpired),
            ]
        );
        assert!(state.jobs.is_empty());
    }

    #[test]
    fn pop_live_job_peels_dead_riders_off_a_live_dedup_job() {
        let mut state = State::default();
        let now = Instant::now();
        let weight = Tensor::ones(vec![16, 16]);
        let spec = PipelineSpec::default();
        let key = CacheKey::new("mvq", &weight, &spec, 7).unwrap();
        // lint:allow(unbounded-channel) -- test-only per-job result channels, one message each
        let (tx_live, _rx_live) = mpsc::channel();
        // lint:allow(unbounded-channel) -- test-only per-job result channels, one message each
        let (tx_dead, _rx_dead) = mpsc::channel();
        let token = CancelToken::new();
        token.cancel();
        state.inflight.insert(
            key.clone(),
            InflightEntry {
                waiters: vec![
                    Waiter {
                        name: "live".into(),
                        tx: tx_live,
                        cancel: None,
                        deadline: None,
                        trace: Trace::begin("live"),
                    },
                    Waiter {
                        name: "dead-rider".into(),
                        tx: tx_dead,
                        cancel: Some(token),
                        deadline: None,
                        trace: Trace::begin("dead-rider"),
                    },
                ],
                queued: Some((0, Priority::Normal)),
                progress: None,
            },
        );
        state.jobs.insert(
            0,
            QueuedJob {
                key: key.clone(),
                algo: "mvq",
                spec,
                payload: JobPayload::Matrix { weight },
                mode: CacheMode::ReadWrite,
                direct: None,
                trace: Trace::begin("test"),
            },
        );
        state.heap.push(QueueRef { priority: Priority::Normal, seq: 0 });

        let (job, dead, dropped) = state.pop_live_job(now);
        assert!(job.is_some(), "a job with a live waiter must still run");
        assert_eq!(dropped, 0);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].0.name, "dead-rider");
        assert_eq!(dead[0].1, CancelKind::Explicit);
        let entry = state.inflight.get(&key).expect("entry survives for the live waiter");
        assert_eq!(entry.waiters.len(), 1);
        assert_eq!(entry.waiters[0].name, "live");
    }

    #[test]
    fn pop_live_job_drops_a_dedup_job_whose_waiters_all_died() {
        let mut state = State::default();
        let weight = Tensor::ones(vec![16, 16]);
        let spec = PipelineSpec::default();
        let key = CacheKey::new("mvq", &weight, &spec, 9).unwrap();
        // lint:allow(unbounded-channel) -- test-only per-job result channel, one message
        let (tx, rx) = mpsc::channel();
        let token = CancelToken::new();
        token.cancel();
        state.inflight.insert(
            key.clone(),
            InflightEntry {
                waiters: vec![Waiter {
                    name: "gone".into(),
                    tx,
                    cancel: Some(token),
                    deadline: None,
                    trace: Trace::begin("gone"),
                }],
                queued: Some((0, Priority::Normal)),
                progress: None,
            },
        );
        state.jobs.insert(
            0,
            QueuedJob {
                key: key.clone(),
                algo: "mvq",
                spec,
                payload: JobPayload::Matrix { weight },
                mode: CacheMode::ReadWrite,
                direct: None,
                trace: Trace::begin("test"),
            },
        );
        state.heap.push(QueueRef { priority: Priority::Normal, seq: 0 });

        let (job, dead, dropped) = state.pop_live_job(Instant::now());
        assert!(job.is_none(), "an all-dead job must never reach a worker");
        assert_eq!(dropped, 1);
        assert_eq!(dead.len(), 1);
        assert!(!state.inflight.contains_key(&key), "the dead entry must be removed");
        // the worker loop sends the cancellation to the dead waiter
        let (waiter, kind) = dead.into_iter().next().unwrap();
        let _ = waiter.tx.send(Err(JobError::Cancelled { name: waiter.name, kind }));
        match rx.recv().unwrap() {
            Err(JobError::Cancelled { kind: CancelKind::Explicit, .. }) => {}
            other => panic!("expected Cancelled(Explicit), got {other:?}"),
        }
    }
}
