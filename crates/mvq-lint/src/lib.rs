//! `mvq-lint`: the workspace's static-analysis gate.
//!
//! The repo's correctness story includes invariants no compiler checks:
//! serialized tag values must never be renumbered, the serve layer must
//! not panic or queue unboundedly, cache locks must not be held across
//! disk I/O, and every `unsafe` block must say why it is sound. This
//! crate walks every `.rs` file under `crates/`, `src/`, and `tests/`
//! (skipping `target/`, `vendor/`, and fixture snippets) and enforces
//! those invariants mechanically, with `file:line` diagnostics. It is
//! dependency-free by design — built from a small line-oriented lexer
//! ([`lexer`]), a hand-parsed manifest ([`manifest`]), and five rules.
//!
//! Run it the way CI does:
//!
//! ```text
//! cargo run -p mvq-lint -- --workspace
//! ```
//!
//! # The rules
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `safety-comment` | every `unsafe` block/fn has an adjacent `// SAFETY:` comment (or doc `# Safety` section) stating the invariants it relies on |
//! | `tag-drift` | serialization tags (`FORMAT_VERSION`, `TAG_*`, `BlobKind` discriminants, `grouping_tag`/`kernel_tag` arms) match the values pinned in `lint.toml`; deletions and unpinned additions also fail |
//! | `panic-path` | no `unwrap()` / `panic!`-family macros / un-allowlisted `expect(...)` in non-test serve-layer and store code |
//! | `lock-scope` | no `.lock()` guard held across disk I/O or a second lock acquisition (brace-scope approximation) |
//! | `unbounded-channel` | no unbounded `channel()` constructors in the serve layer — backpressure requires capacities |
//!
//! A malformed escape hatch reports as `allow-syntax`.
//!
//! # The escape hatch
//!
//! A finding that is deliberate gets an inline allow, on the same line
//! or the line directly above, naming the rule and the reason:
//!
//! ```text
//! // lint:allow(unbounded-channel) -- carries exactly one message per job
//! let (tx, rx) = mpsc::channel();
//! ```
//!
//! The reason is mandatory; an allow without one (or naming an unknown
//! rule) is itself a finding. `expect` messages are allowlisted
//! centrally instead, in `lint.toml`'s `[panic-path] allow-expect`
//! list, so every accepted invariant message is visible in one place.
//!
//! # Bumping `FORMAT_VERSION` legitimately
//!
//! The `tag-drift` rule makes tag edits loud, not impossible. To change
//! the serialized layout for real, in **one** change:
//!
//! 1. bump `FORMAT_VERSION` in `crates/mvq-core/src/store.rs`
//!    (append new tags; never renumber or reuse old values);
//! 2. update the pinned values in `lint.toml` to match;
//! 3. update the golden-blob decode test in `store.rs` so the old
//!    format either still decodes (compatible read path) or fails with
//!    a typed error — the test documents which;
//! 4. run `cargo run -p mvq-lint -- --workspace` and the tier-1 tests.
//!
//! If the lint still complains, the manifest and source disagree —
//! which is exactly the drift it exists to catch.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use diag::Diagnostic;
pub use engine::{check_source, check_workspace, ALLOW_SYNTAX, RULE_NAMES};
pub use manifest::{Manifest, ManifestError};
