//! A lightweight, line-oriented Rust lexer.
//!
//! The rules in this crate do not need a full parse tree — they need to
//! know, per source line, *which characters are code*, *which are
//! comments*, and *which string literals appear*. This module produces
//! exactly that view: for every line of a file, a copy of the line with
//! comment text and string/char literal contents blanked out (so token
//! searches never match inside a doc comment or a format string), the
//! concatenated comment text (so the `SAFETY:` audit and the
//! `lint:allow` escape hatch can read it), and the string literals with
//! their columns (so the panic-path rule can read `expect` messages).
//!
//! Handled: `//` line comments, nested `/* */` block comments, plain and
//! raw strings (`r"…"`, `r#"…"#`, any hash depth), byte strings, char
//! literals, escapes, and the char-literal vs. lifetime ambiguity
//! (`'a'` vs. `'a`). Multi-line strings and block comments carry their
//! state across lines.

/// One source line, split into its lexical layers.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and literal contents replaced by spaces.
    /// Delimiting quotes are kept, so `.expect("msg")` still reads as
    /// `.expect("   ")` and brace counting stays exact.
    pub code: String,
    /// The text of every comment on the line (markers stripped),
    /// concatenated in order.
    pub comment: String,
    /// String literals that *start* on this line: `(column in `code`,
    /// contents)`. Multi-line literal contents are captured in full on
    /// the starting line.
    pub strings: Vec<(usize, String)>,
}

/// Lexer state carried across lines.
enum State {
    Code,
    /// Inside `/* */`, with nesting depth.
    Block(u32),
    /// Inside a plain (possibly byte) string literal.
    Str,
    /// Inside a raw string literal terminated by `"` + `hashes` `#`s.
    RawStr {
        hashes: u32,
    },
}

/// Splits `source` into lexical [`Line`]s.
pub fn lex(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut strings: Vec<(usize, String)> = Vec::new();
    // Index into `strings` (possibly on an earlier line) currently being
    // filled; multi-line literals keep appending to their starting entry.
    let mut open_string: Option<(usize, usize)> = None; // (line, slot)
    let mut state = State::Code;
    let mut i = 0usize;

    // Appends to the string literal currently being collected.
    // Collected contents live in the line the literal started on.
    macro_rules! push_str_char {
        ($lines:ident, $c:expr) => {
            if let Some((line_idx, slot)) = open_string {
                if line_idx == $lines.len() {
                    strings[slot].1.push($c);
                } else {
                    $lines[line_idx].strings[slot].1.push($c);
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                strings: std::mem::take(&mut strings),
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // line comment: consume to end of line, keep the text
                    i += 2;
                    // strip doc-comment markers (`///`, `//!`) so the
                    // comment text starts at the prose
                    while chars.get(i) == Some(&'/') || chars.get(i) == Some(&'!') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i] != '\n' {
                        comment.push(chars[i]);
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '"' {
                    let col = code.chars().count();
                    code.push('"');
                    strings.push((col, String::new()));
                    open_string = Some((lines.len(), strings.len() - 1));
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // possible raw/byte string prefix: r" r#" b" br" br#"
                    if let Some((hashes, consumed, raw)) = string_prefix(&chars, i) {
                        let col = code.chars().count();
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        code.push('"');
                        strings.push((col, String::new()));
                        open_string = Some((lines.len(), strings.len() - 1));
                        state = if raw { State::RawStr { hashes } } else { State::Str };
                        i += consumed + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // char literal or lifetime
                    if is_char_literal(&chars, i) {
                        code.push('\'');
                        i += 1;
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            if chars[i] == '\\' {
                                code.push(' ');
                                i += 1;
                            }
                            if i < chars.len() && chars[i] != '\n' {
                                code.push(' ');
                                i += 1;
                            }
                        }
                        if chars.get(i) == Some(&'\'') {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::Block(depth - 1) };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    push_str_char!(lines, c);
                    code.push(' ');
                    i += 1;
                    if i < chars.len() && chars[i] != '\n' {
                        push_str_char!(lines, chars[i]);
                        code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    code.push('"');
                    open_string = None;
                    state = State::Code;
                    i += 1;
                } else {
                    push_str_char!(lines, c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    open_string = None;
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    push_str_char!(lines, c);
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || !strings.is_empty() {
        lines.push(Line { code, comment, strings });
    }
    lines
}

/// Whether the character before index `i` continues an identifier —
/// guards the `r"…"` / `b"…"` prefix detection against identifiers that
/// merely end in `r`/`b` (e.g. `var"` cannot occur, but `hasher` + call
/// chains can put an `r` before a quote-free char).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Detects a raw/byte string prefix at `i`. Returns
/// `(hashes, chars consumed before the quote, is_raw)`.
fn string_prefix(chars: &[char], i: usize) -> Option<(u32, usize, bool)> {
    let mut j = i;
    let mut raw = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
        Some((hashes, j - i, raw))
    } else {
        None
    }
}

/// Whether `"` at `i` is followed by `hashes` `#`s, closing a raw string.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// `'` at `i` starts a char literal (vs. a lifetime) when the next char
/// is an escape, or when the char after next closes the quote.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// True when `needle` occurs in `haystack` as a standalone word — the
/// characters on both sides (if any) are not identifier characters.
/// Returns the byte offset of the first such occurrence.
pub fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !haystack[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_code() {
        let lines = lex("let x = 1; // unwrap() here is prose\n");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap() here is prose"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = lex("a /* one /* two */ still */ b\nc /* open\npanic!() inside\n*/ d\n");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[2].code.contains("panic"));
        assert!(lines[2].comment.contains("panic!() inside"));
        assert!(lines[3].code.contains('d'));
    }

    #[test]
    fn string_contents_are_blanked_but_captured() {
        let lines = lex("foo.expect(\"service lock\");\n");
        assert!(!lines[0].code.contains("service"));
        assert!(lines[0].code.contains(".expect(\""));
        assert_eq!(lines[0].strings.len(), 1);
        assert_eq!(lines[0].strings[0].1, "service lock");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lines = lex("let s = r#\"has \"quotes\" and panic!()\"#; next()\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("next()"));
        assert_eq!(lines[0].strings[0].1, "has \"quotes\" and panic!()");
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        let lines = lex("f(\"a \\\" b\"); g()\n");
        assert!(lines[0].code.contains("g()"));
        assert_eq!(lines[0].strings[0].1, "a \\\" b");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = lex("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }\n");
        // the brace inside the char literal must not count as code
        let braces = lines[0].code.matches('{').count();
        assert_eq!(braces, 1, "{}", lines[0].code);
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn multiline_strings_attach_to_their_starting_line() {
        let lines = lex("let s = \"line one\nline two\";\nafter();\n");
        assert_eq!(lines[0].strings.len(), 1);
        assert!(lines[0].strings[0].1.contains("line two"));
        assert!(lines[1].strings.is_empty());
        assert!(lines[2].code.contains("after()"));
    }

    #[test]
    fn find_word_respects_identifier_boundaries() {
        assert!(find_word("unsafe { }", "unsafe").is_some());
        assert!(find_word("deny(unsafe_op_in_unsafe_fn)", "unsafe").is_none());
        assert!(find_word("let channel_name = 1;", "channel").is_none());
        assert!(find_word("mpsc::channel()", "channel").is_some());
    }
}
