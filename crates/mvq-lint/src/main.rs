//! CLI for the workspace lint. See the `mvq_lint` crate docs for the
//! rules and the allow syntax.
//!
//! ```text
//! mvq-lint --workspace                 # lint the whole tree (CI mode)
//! mvq-lint path/to/file.rs …           # lint specific files
//! mvq-lint --root <dir> --manifest <f> # override repo root / lint.toml
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mvq_lint::{check_source, check_workspace, Manifest};

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(count) => {
            eprintln!("mvq-lint: {count} finding(s)");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("mvq-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                root = Some(PathBuf::from(argv.next().ok_or("--root needs a path")?));
            }
            "--manifest" => {
                manifest_path = Some(PathBuf::from(argv.next().ok_or("--manifest needs a path")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: mvq-lint [--workspace] [--root <dir>] [--manifest <lint.toml>] [files…]"
                );
                return Ok(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` (see --help)"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if !workspace && files.is_empty() {
        return Err("nothing to lint: pass --workspace or one or more .rs files".into());
    }

    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let manifest_path = manifest_path.unwrap_or_else(|| root.join("lint.toml"));
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("reading {}: {e}", manifest_path.display()))?;
    let manifest = Manifest::parse(&manifest_text).map_err(|e| e.to_string())?;

    let mut diags = Vec::new();
    if workspace {
        diags.extend(check_workspace(&root, &manifest).map_err(|e| e.to_string())?);
    }
    for file in &files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(check_source(&rel, &source, &manifest));
    }
    for d in &diags {
        println!("{d}");
    }
    Ok(diags.len())
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory containing `lint.toml` (so the tool works from any crate
/// directory), falling back to the current directory.
fn find_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return Ok(cwd),
        }
    }
}
