//! Diagnostics: what a rule reports and how it prints.

use std::fmt;

/// One lint finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (e.g. `panic-path`).
    pub rule: &'static str,
    /// Human-readable explanation, specific to the site.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic for `rule` at `file:line`.
    pub fn new(
        file: impl Into<String>,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { file: file.into(), line, rule, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_file_line_rule_message() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, "panic-path", "bare unwrap()");
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7: panic-path: bare unwrap()");
    }
}
