//! Panic-path lint: on the paths listed in `[panic-path].paths`
//! (the serve layer and the artifact store — code whose panics would
//! take down a worker or poison a cache lock), non-test code must not
//! call `unwrap()`, reach `panic!`/`unreachable!`/`todo!`/
//! `unimplemented!`, or use `expect(...)` with a message outside the
//! manifest's `allow-expect` allowlist. Typed errors (`MvqError`,
//! `JobError`) are the sanctioned alternative; the allowlist exists for
//! documented invariants (lock poisoning, sizes checked on the previous
//! line) where a typed error would only launder a bug.

use crate::diag::Diagnostic;
use crate::engine::FileView;
use crate::lexer::find_word;
use crate::manifest::Manifest;
use crate::rules::PANICS;

/// Macros that are always findings on a guarded path.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the lint over one file (no-op off the guarded paths).
pub fn check(view: &FileView<'_>, manifest: &Manifest) -> Vec<Diagnostic> {
    if !manifest.panic_paths.iter().any(|p| view.path.starts_with(p.as_str())) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for (i, line) in view.lines.iter().enumerate() {
        if view.is_test[i] {
            continue;
        }
        let code = &line.code;
        if let Some(at) = find_word(code, "unwrap") {
            if code[at..].starts_with("unwrap(") {
                diags.push(Diagnostic::new(
                    view.path,
                    i + 1,
                    PANICS,
                    "bare `unwrap()` on a guarded path — return a typed error, or use \
                     `expect(\"<invariant>\")` with an allowlist entry in lint.toml",
                ));
            }
        }
        for mac in PANIC_MACROS {
            if let Some(at) = find_word(code, mac) {
                if code[at + mac.len()..].starts_with('!') {
                    diags.push(Diagnostic::new(
                        view.path,
                        i + 1,
                        PANICS,
                        format!(
                            "`{mac}!` on a guarded path — a panic here kills a worker or \
                             poisons a cache lock; return a typed error instead"
                        ),
                    ));
                }
            }
        }
        if let Some(at) = find_word(code, "expect") {
            if code[at..].starts_with("expect(") {
                let message =
                    line.strings.iter().find(|(col, _)| *col > at).map(|(_, s)| s.as_str());
                match message {
                    Some(msg) if manifest.allow_expect.iter().any(|a| a == msg) => {}
                    Some(msg) => diags.push(Diagnostic::new(
                        view.path,
                        i + 1,
                        PANICS,
                        format!(
                            "`expect(\"{msg}\")` message is not in the lint.toml \
                             allow-expect list — allowlist the invariant (with a comment \
                             in lint.toml saying why it holds) or return a typed error"
                        ),
                    )),
                    None => diags.push(Diagnostic::new(
                        view.path,
                        i + 1,
                        PANICS,
                        "`expect(...)` without a literal message on the same line — the \
                         allowlist can only audit literal invariant messages",
                    )),
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use crate::engine::check_source;
    use crate::manifest::Manifest;

    fn manifest() -> Manifest {
        Manifest::parse(
            "[panic-path]\npaths = [\"src/service.rs\"]\nallow-expect = [\"state lock\"]\n",
        )
        .unwrap()
    }

    #[test]
    fn unwrap_and_panic_fire_on_guarded_paths_only() {
        let src = "fn f() { x.unwrap(); panic!(\"boom\"); }\n";
        assert_eq!(check_source("src/service.rs", src, &manifest()).len(), 2);
        assert!(check_source("src/elsewhere.rs", src, &manifest()).is_empty());
    }

    #[test]
    fn allowlisted_expect_passes_unlisted_fires() {
        let ok = "fn f() { m.lock().expect(\"state lock\"); }\n";
        assert!(check_source("src/service.rs", ok, &manifest()).is_empty());
        let bad = "fn f() { m.lock().expect(\"whatever\"); }\n";
        assert_eq!(check_source("src/service.rs", bad, &manifest()).len(), 1);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check_source("src/service.rs", src, &manifest()).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { x.unwrap_or_else(|| 3); y.unwrap_or(0); z.unwrap_or_default(); }\n";
        assert!(check_source("src/service.rs", src, &manifest()).is_empty());
    }
}
