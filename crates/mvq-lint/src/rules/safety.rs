//! Safety-comment audit: every `unsafe` keyword in code must have an
//! adjacent safety comment — `// SAFETY: …` on the same line, or in the
//! comment block immediately above (doc `# Safety` sections count, so a
//! documented `unsafe fn` passes). Attribute lines (`#[target_feature]`
//! and friends) between the comment and the `unsafe` are skipped.
//!
//! This applies everywhere, including tests: an unexplained `unsafe` is
//! no safer for being in a `#[cfg(test)]` module.

use crate::diag::Diagnostic;
use crate::engine::FileView;
use crate::lexer::find_word;
use crate::rules::SAFETY;

/// How many attached lines (comments, attributes, blanks) above an
/// `unsafe` are searched for a safety comment.
const LOOKBACK: usize = 15;

/// Runs the audit over one file.
pub fn check(view: &FileView<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, line) in view.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_none() {
            continue;
        }
        if has_adjacent_safety(view, i) {
            continue;
        }
        diags.push(Diagnostic::new(
            view.path,
            i + 1,
            SAFETY,
            "`unsafe` without an adjacent `// SAFETY:` comment stating the upheld invariants",
        ));
    }
    diags
}

/// A safety comment is adjacent when the same line's comment, or the
/// contiguous run of comment/attribute/blank lines directly above,
/// mentions `SAFETY` (or a doc `# Safety` section).
fn has_adjacent_safety(view: &FileView<'_>, i: usize) -> bool {
    if mentions_safety(&view.lines[i].comment) {
        return true;
    }
    let mut j = i;
    let mut looked = 0;
    while j > 0 && looked < LOOKBACK {
        j -= 1;
        looked += 1;
        let line = &view.lines[j];
        if mentions_safety(&line.comment) {
            return true;
        }
        let code = line.code.trim();
        let attached = code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
        if !attached {
            return false;
        }
    }
    false
}

fn mentions_safety(comment: &str) -> bool {
    comment.contains("SAFETY") || comment.contains("Safety")
}

#[cfg(test)]
mod tests {
    use crate::engine::check_source;
    use crate::manifest::Manifest;

    #[test]
    fn fires_without_and_passes_with_safety_comment() {
        let m = Manifest::default();
        let bad = "fn f() { let x = unsafe { *p };\n}\n";
        assert_eq!(check_source("src/a.rs", bad, &m).len(), 1);

        let good =
            "// SAFETY: p is valid for reads; checked above.\nfn f() { let x = unsafe { *p };\n}\n";
        assert!(check_source("src/a.rs", good, &m).is_empty());
    }

    #[test]
    fn doc_safety_section_through_attributes_counts() {
        let m = Manifest::default();
        let good = "/// Does things.\n///\n/// # Safety\n///\n/// Caller must ensure AVX.\n#[target_feature(enable = \"avx\")]\npub unsafe fn fast() {}\n";
        assert!(check_source("src/a.rs", good, &m).is_empty());
    }

    #[test]
    fn deny_attribute_is_not_an_unsafe_use() {
        let m = Manifest::default();
        let good = "#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n";
        assert!(check_source("src/a.rs", good, &m).is_empty());
    }
}
