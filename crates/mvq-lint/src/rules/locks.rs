//! Lock-discipline check: a `.lock()` guard bound in a scope must not
//! stay live across disk I/O or a second `.lock()` acquisition.
//! Holding a cache mutex through a blob write stalls every other
//! worker; taking two locks in one scope is how lock-order inversions
//! (and deadlocks) are born.
//!
//! The analysis is a deliberate approximation: brace-scope tracking
//! over the lexical view. A guard is born on a `let … = ….lock(…)…`
//! line, and dies when its binding scope closes or an explicit
//! `drop(guard)` runs. While any guard is live, lines containing disk
//! I/O tokens (`File::`, `fs::`, `read_*`/`write_*` calls, `.exists(`)
//! or another `.lock(` are flagged. Guards passed across function
//! boundaries (e.g. a helper taking `&mut CacheInner`) are invisible to
//! it — the rule keeps the *common* shape honest, it is not a proof.
//! Test code is exempt (tests routinely lock + touch disk serially).

use crate::diag::Diagnostic;
use crate::engine::FileView;
use crate::lexer::find_word;
use crate::rules::LOCKS;

/// A live lock guard.
struct Guard {
    name: String,
    /// 1-based line it was bound on.
    line: usize,
    /// Brace depth its binding lives at; the guard dies when depth
    /// drops below this.
    depth: i32,
}

/// Runs the check over one file.
pub fn check(view: &FileView<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    for (i, line) in view.lines.iter().enumerate() {
        let code = &line.code;
        if view.is_test[i] {
            // still track braces so depths stay aligned after the region
            depth += brace_delta(code);
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        let locks_here = code.matches(".lock(").count();
        let binds_here = find_word(code, "let").is_some() && locks_here > 0;

        if let Some(guard) = guards.first() {
            if locks_here > 0 {
                diags.push(Diagnostic::new(
                    view.path,
                    i + 1,
                    LOCKS,
                    format!(
                        "acquires a lock while guard `{}` (line {}) is still held — \
                         nested locks invite lock-order inversion; drop the first \
                         guard or restructure",
                        guard.name, guard.line
                    ),
                ));
            }
        } else if binds_here && locks_here > 1 {
            diags.push(Diagnostic::new(
                view.path,
                i + 1,
                LOCKS,
                "acquires two locks in one expression — nested locks invite \
                 lock-order inversion",
            ));
        }
        if (!guards.is_empty() || binds_here) && io_token(code) {
            let (name, gline) = guards
                .first()
                .map(|g| (g.name.as_str(), g.line))
                .unwrap_or(("<this line's guard>", i + 1));
            diags.push(Diagnostic::new(
                view.path,
                i + 1,
                LOCKS,
                format!(
                    "disk I/O while lock guard `{name}` (line {gline}) is held — \
                     do the I/O outside the critical section and re-lock to publish"
                ),
            ));
        }

        // explicit drops release guards immediately
        guards.retain(|g| !code.contains(&format!("drop({})", g.name)));

        // track braces; a dip below a guard's depth ends its scope even
        // if the line re-opens braces afterwards
        let mut min = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    min = min.min(depth);
                }
                _ => {}
            }
        }
        guards.retain(|g| g.depth <= min);

        if binds_here && guards.is_empty() {
            if let Some(name) = binding_name(code) {
                guards.push(Guard { name, line: i + 1, depth });
            }
        }
    }
    diags
}

fn brace_delta(code: &str) -> i32 {
    code.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

/// Extracts the bound name from `let [mut] <name> = …`.
fn binding_name(code: &str) -> Option<String> {
    let at = find_word(code, "let")?;
    let mut rest = code[at + 3..].trim_start();
    if let Some(stripped) = rest.strip_prefix("mut ") {
        rest = stripped.trim_start();
    }
    let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Disk-I/O tokens per the rule's contract: `File::`, `fs::`,
/// `read_*`/`write_*` calls, and existence probes.
fn io_token(code: &str) -> bool {
    if code.contains("File::") || code.contains("fs::") || code.contains(".exists(") {
        return true;
    }
    // any identifier starting read_/write_ followed by a call
    for prefix in ["read_", "write_"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(prefix) {
            let at = from + pos;
            let before_ok = at == 0
                || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
            let ident_end = at
                + code[at..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .map(|c| c.len_utf8())
                    .sum::<usize>();
            if before_ok && code[ident_end..].starts_with('(') {
                return true;
            }
            from = at + prefix.len();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::engine::check_source;
    use crate::manifest::Manifest;

    fn m() -> Manifest {
        Manifest::default()
    }

    #[test]
    fn io_under_lock_fires() {
        let src = "fn f(&self) {\n    let inner = self.state.lock().expect(\"lock\");\n    let bytes = fs::read(&path)?;\n    inner.insert(bytes);\n}\n";
        let diags = check_source("src/a.rs", src, &m());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lock-scope");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn io_after_scope_close_is_fine() {
        let src = "fn f(&self) {\n    {\n        let inner = self.state.lock().expect(\"lock\");\n        inner.touch();\n    }\n    let bytes = fs::read(&path)?;\n}\n";
        assert!(check_source("src/a.rs", src, &m()).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(&self) {\n    let inner = self.state.lock().expect(\"lock\");\n    let key = inner.key();\n    drop(inner);\n    let bytes = fs::read(&path)?;\n}\n";
        assert!(check_source("src/a.rs", src, &m()).is_empty());
    }

    #[test]
    fn second_lock_under_guard_fires() {
        let src = "fn f(&self) {\n    let a = self.x.lock().expect(\"x\");\n    let b = self.y.lock().expect(\"y\");\n}\n";
        let diags = check_source("src/a.rs", src, &m());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn tests_are_exempt_and_depth_stays_aligned() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let g = m.lock().unwrap();\n        let b = fs::read(&p).unwrap();\n    }\n}\nfn after() { let g = m.lock().expect(\"x\"); g.get(); }\n";
        assert!(check_source("src/a.rs", src, &m()).is_empty());
    }
}
