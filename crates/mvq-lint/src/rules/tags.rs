//! Append-only tag guard: serialization tag constants, enum
//! discriminants, and match-arm encodings are compared against the
//! pinned values in `lint.toml`.
//!
//! Three ways to fail, all of which would otherwise corrupt or orphan
//! existing on-disk caches silently:
//!
//! * a pinned name's value in the source differs from the manifest
//!   (a tag was renumbered);
//! * a pinned name no longer appears in the source (a tag was deleted
//!   or moved without updating the manifest);
//! * an enum with pinned variants gained a new integer-valued variant
//!   or arm that is *not* pinned (appending a tag must land with its
//!   manifest entry in the same change, or the pin set rots).

use crate::diag::Diagnostic;
use crate::engine::FileView;
use crate::lexer::find_word;
use crate::manifest::Manifest;
use crate::rules::TAGS;

/// A tag value as found in the source.
struct Found {
    /// Pin-style name: a bare const name or `Enum::Variant`.
    name: String,
    value: i64,
    /// 1-based line.
    line: usize,
}

/// Runs the guard over one file (no-op unless the manifest pins it).
pub fn check(view: &FileView<'_>, manifest: &Manifest) -> Vec<Diagnostic> {
    let Some(pins) = manifest.pins.iter().find(|p| p.file == view.path) else {
        return Vec::new();
    };
    let enums: Vec<&str> = {
        let mut names: Vec<&str> = pins
            .pins
            .iter()
            .filter_map(|(name, _)| name.split_once("::").map(|(e, _)| e))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    };
    let mut found = Vec::new();
    extract_consts(view, pins, &mut found);
    extract_enum_values(view, &enums, &mut found);

    let mut diags = Vec::new();
    for (name, pinned) in &pins.pins {
        let hits: Vec<&Found> = found.iter().filter(|f| &f.name == name).collect();
        if hits.is_empty() {
            diags.push(Diagnostic::new(
                view.path,
                1,
                TAGS,
                format!(
                    "pinned tag `{name}` not found in this file — tags are append-only; \
                     deleting or moving one orphans every existing cache blob"
                ),
            ));
            continue;
        }
        for hit in hits {
            if hit.value != *pinned {
                diags.push(Diagnostic::new(
                    view.path,
                    hit.line,
                    TAGS,
                    format!(
                        "`{name}` is {} here but pinned at {pinned} in lint.toml — \
                         renumbering a serialized tag corrupts existing caches; append a \
                         new tag (and pin it) instead, bumping FORMAT_VERSION if the \
                         layout changed",
                        hit.value
                    ),
                ));
            }
        }
    }
    for f in &found {
        let of_pinned_enum = f.name.split_once("::").is_some_and(|(e, _)| enums.contains(&e));
        if of_pinned_enum && !pins.pins.iter().any(|(name, _)| name == &f.name) {
            diags.push(Diagnostic::new(
                view.path,
                f.line,
                TAGS,
                format!(
                    "`{}` = {} is a new tag of a pinned enum — append it to the \
                     `[pins.\"{}\"]` section of lint.toml in this same change",
                    f.name, f.value, view.path
                ),
            ));
        }
    }
    diags
}

/// Collects `const NAME: ty = <int>;` declarations for bare pins.
fn extract_consts(view: &FileView<'_>, pins: &crate::manifest::PinFile, out: &mut Vec<Found>) {
    for (name, _) in &pins.pins {
        if name.contains("::") {
            continue;
        }
        for (i, line) in view.lines.iter().enumerate() {
            let code = &line.code;
            if find_word(code, "const").is_none() || find_word(code, name).is_none() {
                continue;
            }
            let Some(eq) = code.find('=') else { continue };
            if let Some(value) = parse_int(&code[eq + 1..]) {
                out.push(Found { name: name.clone(), value, line: i + 1 });
            }
        }
    }
}

/// Collects integer-valued appearances of each pinned enum's variants:
/// explicit discriminants (`Variant = 0,` inside `enum E`) and match
/// arms in either direction (`E::Variant => 0` / `0 => ...E::Variant...`).
fn extract_enum_values(view: &FileView<'_>, enums: &[&str], out: &mut Vec<Found>) {
    let mut depth: i32 = 0;
    // a just-seen `enum E` waiting for its opening brace
    let mut pending: Option<&str> = None;
    // (enum name, depth its body brace opened at)
    let mut body: Option<(&str, i32)> = None;

    for (i, line) in view.lines.iter().enumerate() {
        let code = &line.code;
        for ename in enums {
            if find_word(code, "enum").is_some() && find_word(code, ename).is_some() {
                pending = Some(ename);
            }
        }
        if let Some((ename, _)) = body {
            if let Some((variant, value)) = parse_discriminant(code) {
                out.push(Found { name: format!("{ename}::{variant}"), value, line: i + 1 });
            }
        }
        for ename in enums {
            if let Some((variant, value)) = parse_match_arm(code, ename) {
                out.push(Found { name: format!("{ename}::{variant}"), value, line: i + 1 });
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(ename) = pending.take() {
                        body = Some((ename, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some((_, at)) = body {
                        if depth == at {
                            body = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// `Variant = 3,` (an explicit enum discriminant line).
fn parse_discriminant(code: &str) -> Option<(String, i64)> {
    let trimmed = code.trim().trim_end_matches(',');
    let (left, right) = trimmed.split_once('=')?;
    let variant = left.trim();
    if variant.is_empty()
        || !variant.chars().all(|c| c.is_alphanumeric() || c == '_')
        || !variant.starts_with(|c: char| c.is_ascii_uppercase())
    {
        return None;
    }
    parse_int(right).map(|v| (variant.to_string(), v))
}

/// A match arm tying `Enum::Variant` to an integer on either side of
/// `=>`. Lines where neither side is a literal integer (e.g. dispatch
/// arms calling functions) are ignored.
fn parse_match_arm(code: &str, ename: &str) -> Option<(String, i64)> {
    let arrow = code.find("=>")?;
    let qual = format!("{ename}::");
    let at = code.find(&qual)?;
    let variant: String =
        code[at + qual.len()..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if variant.is_empty() {
        return None;
    }
    let left = code[..arrow].trim();
    if let Some(v) = parse_int(left) {
        return Some((variant, v));
    }
    let right = &code[arrow + 2..];
    let lead: String =
        right.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '_').collect();
    if lead.is_empty() {
        return None;
    }
    parse_int(&lead).map(|v| (variant, v))
}

/// Parses a decimal integer, tolerating `_` separators, a trailing
/// `;`/`,`, and a type suffix (`1u8`).
fn parse_int(text: &str) -> Option<i64> {
    let text = text.trim().trim_end_matches([';', ',']).trim();
    let bytes = text.as_bytes();
    let mut idx = usize::from(bytes.first() == Some(&b'-'));
    let digits_start = idx;
    while idx < bytes.len() && (bytes[idx].is_ascii_digit() || bytes[idx] == b'_') {
        idx += 1;
    }
    if idx == digits_start {
        return None;
    }
    // reject e.g. `1.5` or an expression continuing after the digits,
    // except a bare type suffix like `u8`
    let rest = &text[idx..];
    let suffix_ok = matches!(
        rest,
        "" | "u8" | "u16" | "u32" | "u64" | "i8" | "i16" | "i32" | "i64" | "usize" | "isize"
    );
    if !suffix_ok {
        return None;
    }
    let digits: String = text[..idx].chars().filter(|c| *c != '_').collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use crate::engine::check_source;
    use crate::manifest::Manifest;

    fn manifest() -> Manifest {
        Manifest::parse(
            "[pins.\"src/codec.rs\"]\nFORMAT_VERSION = 1\n\"Kind::A\" = 0\n\"Kind::B\" = 1\n",
        )
        .unwrap()
    }

    const CLEAN: &str = "pub const FORMAT_VERSION: u16 = 1;\n\
        pub enum Kind {\n    A = 0,\n    B = 1,\n}\n\
        fn tag(k: Kind) -> u8 {\n    match k {\n        Kind::A => 0,\n        Kind::B => 1,\n    }\n}\n\
        fn from(t: u8) -> Option<Kind> {\n    match t {\n        0 => Some(Kind::A),\n        1 => Some(Kind::B),\n        _ => None,\n    }\n}\n";

    #[test]
    fn clean_pinned_file_passes() {
        assert!(check_source("src/codec.rs", CLEAN, &manifest()).is_empty());
    }

    #[test]
    fn renumbered_tag_fires() {
        let drifted = CLEAN.replace("Kind::B => 1,", "Kind::B => 2,");
        let diags = check_source("src/codec.rs", &drifted, &manifest());
        assert!(
            diags.iter().any(|d| d.rule == "tag-drift" && d.message.contains("Kind::B")),
            "{diags:?}"
        );
    }

    #[test]
    fn deleted_pin_fires() {
        let gone = CLEAN.replace("pub const FORMAT_VERSION: u16 = 1;\n", "");
        let diags = check_source("src/codec.rs", &gone, &manifest());
        assert!(diags.iter().any(|d| d.message.contains("FORMAT_VERSION")), "{diags:?}");
    }

    #[test]
    fn unpinned_new_variant_fires() {
        let appended = CLEAN.replace("    B = 1,\n", "    B = 1,\n    C = 2,\n");
        let diags = check_source("src/codec.rs", &appended, &manifest());
        assert!(diags.iter().any(|d| d.message.contains("Kind::C")), "{diags:?}");
    }

    #[test]
    fn unpinned_file_is_ignored() {
        assert!(check_source("src/other.rs", "const FORMAT_VERSION: u16 = 9;\n", &manifest())
            .is_empty());
    }
}
