//! The five rules. Each submodule exposes `check(...) -> Vec<Diagnostic>`
//! over a [`crate::engine::FileView`]; rule names live here so the
//! engine, the allow parser, and the docs agree on them.

pub mod channels;
pub mod locks;
pub mod panics;
pub mod safety;
pub mod tags;

/// `unsafe` block/fn without an adjacent `// SAFETY:` comment.
pub const SAFETY: &str = "safety-comment";
/// Serialization tag or format version drifted from the pinned manifest.
pub const TAGS: &str = "tag-drift";
/// `unwrap()`/`expect()`/`panic!` on a guarded non-test code path.
pub const PANICS: &str = "panic-path";
/// Lock guard held across disk I/O or a second lock acquisition.
pub const LOCKS: &str = "lock-scope";
/// Unbounded `channel()` constructor in backpressure-guarded code.
pub const CHANNELS: &str = "unbounded-channel";
