//! Bounded-channel guard: on the paths listed in
//! `[unbounded-channel].paths` (the serve layer), unbounded channel
//! constructors (`mpsc::channel()` and friends) are forbidden in
//! non-test code. The worker pool's backpressure story (PR 5) depends
//! on every queue having a capacity; one unbounded producer turns a
//! byte-budgeted service into an OOM. Deliberate exceptions — e.g. a
//! per-job result channel that carries at most one message — use the
//! inline `lint:allow(unbounded-channel) -- <reason>` escape hatch.

use crate::diag::Diagnostic;
use crate::engine::FileView;
use crate::lexer::find_word;
use crate::manifest::Manifest;
use crate::rules::CHANNELS;

/// Runs the guard over one file (no-op off the guarded paths).
pub fn check(view: &FileView<'_>, manifest: &Manifest) -> Vec<Diagnostic> {
    if !manifest.channel_paths.iter().any(|p| view.path.starts_with(p.as_str())) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for (i, line) in view.lines.iter().enumerate() {
        if view.is_test[i] {
            continue;
        }
        let code = &line.code;
        if let Some(at) = find_word(code, "channel") {
            // `sync_channel` never matches here: `find_word` requires a
            // non-identifier char before the match, and `_` is one.
            if code[at..].starts_with("channel()") {
                diags.push(Diagnostic::new(
                    view.path,
                    i + 1,
                    CHANNELS,
                    "unbounded `channel()` in the serve layer — use `sync_channel(cap)` \
                     to keep backpressure, or justify with \
                     `lint:allow(unbounded-channel) -- <why this cannot grow unboundedly>`",
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use crate::engine::check_source;
    use crate::manifest::Manifest;

    fn manifest() -> Manifest {
        Manifest::parse("[unbounded-channel]\npaths = [\"src/pool.rs\"]\n").unwrap()
    }

    #[test]
    fn unbounded_fires_bounded_passes() {
        let bad = "fn f() { let (tx, rx) = mpsc::channel(); }\n";
        assert_eq!(check_source("src/pool.rs", bad, &manifest()).len(), 1);
        let good = "fn f() { let (tx, rx) = mpsc::sync_channel(64); }\n";
        assert!(check_source("src/pool.rs", good, &manifest()).is_empty());
        assert!(check_source("src/other.rs", bad, &manifest()).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "// lint:allow(unbounded-channel) -- carries exactly one result per job\nlet (tx, rx) = mpsc::channel();\n";
        assert!(check_source("src/pool.rs", src, &manifest()).is_empty());
    }
}
