//! The pinned lint manifest (`lint.toml`), hand-parsed.
//!
//! The workspace vendors no crates.io code, so the manifest is read by a
//! small parser covering exactly the TOML subset the lint needs:
//! `[section]` / `[section."quoted key"]` headers, `key = <integer>`,
//! `key = "<string>"`, and `key = [ "a", "b", … ]` arrays (single- or
//! multi-line), with `#` comments.
//!
//! ## Sections
//!
//! * `[pins."<repo-relative file>"]` — append-only tag pins for that
//!   file. Bare keys pin `const NAME: <ty> = <int>;` declarations
//!   (e.g. `FORMAT_VERSION = 1`); quoted `"Enum::Variant"` keys pin
//!   match-arm encodings (`Enum::Variant => <int>`) and explicit enum
//!   discriminants (`Variant = <int>` inside `enum Enum`). The
//!   `tag-drift` rule fails if a pinned value changed, a pinned name
//!   disappeared, or an *unpinned* int-valued arm appeared for a pinned
//!   enum (appending a tag must update the manifest in the same PR).
//! * `[panic-path]` — `paths` lists the file prefixes the panic-path
//!   rule applies to; `allow-expect` lists the `expect("…")` invariant
//!   messages allowed there.
//! * `[unbounded-channel]` — `paths` lists the file prefixes where
//!   unbounded `channel()` constructors are forbidden.

use std::collections::BTreeMap;

/// One file's pinned tag values, in manifest order.
#[derive(Debug, Clone, Default)]
pub struct PinFile {
    /// Repo-relative path (forward slashes) the pins apply to.
    pub file: String,
    /// `(name, pinned value)` — a bare const name or `Enum::Variant`.
    pub pins: Vec<(String, i64)>,
}

/// Parsed manifest contents; see the module docs for the schema.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Tag pins grouped by file.
    pub pins: Vec<PinFile>,
    /// File prefixes the panic-path rule applies to.
    pub panic_paths: Vec<String>,
    /// `expect` messages allowlisted as documented invariants.
    pub allow_expect: Vec<String>,
    /// File prefixes the unbounded-channel rule applies to.
    pub channel_paths: Vec<String>,
}

/// A manifest parse failure, with its line number.
#[derive(Debug)]
pub struct ManifestError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

#[derive(Debug, PartialEq)]
enum Value {
    Int(i64),
    Str(String),
    List(Vec<String>),
}

impl Manifest {
    /// Parses manifest text.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError`] on malformed headers, keys, or values.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut manifest = Manifest::default();
        // section name -> ordered key/value pairs
        let mut sections: BTreeMap<String, Vec<(String, Value, usize)>> = BTreeMap::new();
        let mut current = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let inner = rest.strip_suffix(']').ok_or_else(|| ManifestError {
                    line: lineno,
                    message: format!("unterminated section header `{line}`"),
                })?;
                current = parse_section_name(inner, lineno)?;
                sections.entry(current.clone()).or_default();
                continue;
            }
            let (key, mut rest) = split_key(&line, lineno)?;
            // multi-line array: keep consuming lines until the `]`
            if rest.starts_with('[') && !rest.contains(']') {
                let mut acc = rest.to_string();
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    acc.push(' ');
                    acc.push_str(&cont);
                    if cont.contains(']') {
                        break;
                    }
                }
                if !acc.contains(']') {
                    return Err(ManifestError {
                        line: lineno,
                        message: format!("unterminated array for key `{key}`"),
                    });
                }
                rest = Box::leak(acc.into_boxed_str());
            }
            let value = parse_value(rest, lineno)?;
            sections.entry(current.clone()).or_default().push((key, value, lineno));
        }
        for (section, entries) in sections {
            if let Some(file) = section.strip_prefix("pins.") {
                let mut pin = PinFile { file: file.to_string(), pins: Vec::new() };
                for (key, value, lineno) in entries {
                    match value {
                        Value::Int(v) => pin.pins.push((key, v)),
                        _ => {
                            return Err(ManifestError {
                                line: lineno,
                                message: format!("pin `{key}` must be an integer"),
                            });
                        }
                    }
                }
                manifest.pins.push(pin);
            } else if section == "panic-path" {
                for (key, value, lineno) in entries {
                    match (key.as_str(), value) {
                        ("paths", Value::List(v)) => manifest.panic_paths = v,
                        ("allow-expect", Value::List(v)) => manifest.allow_expect = v,
                        (other, _) => {
                            return Err(ManifestError {
                                line: lineno,
                                message: format!("unknown [panic-path] key `{other}`"),
                            });
                        }
                    }
                }
            } else if section == "unbounded-channel" {
                for (key, value, lineno) in entries {
                    match (key.as_str(), value) {
                        ("paths", Value::List(v)) => manifest.channel_paths = v,
                        (other, _) => {
                            return Err(ManifestError {
                                line: lineno,
                                message: format!("unknown [unbounded-channel] key `{other}`"),
                            });
                        }
                    }
                }
            } else {
                let lineno = entries.first().map_or(0, |e| e.2);
                return Err(ManifestError {
                    line: lineno,
                    message: format!("unknown section `[{section}]`"),
                });
            }
        }
        Ok(manifest)
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `pins."some/path.rs"` or a plain section name.
fn parse_section_name(inner: &str, lineno: usize) -> Result<String, ManifestError> {
    if let Some(dot) = inner.find('.') {
        let head = &inner[..dot];
        let tail = inner[dot + 1..].trim();
        let unquoted =
            tail.strip_prefix('"').and_then(|t| t.strip_suffix('"')).ok_or_else(|| {
                ManifestError {
                    line: lineno,
                    message: format!("dotted section `[{inner}]` needs a quoted tail"),
                }
            })?;
        Ok(format!("{head}.{unquoted}"))
    } else {
        Ok(inner.trim().to_string())
    }
}

/// Splits `key = value`, unquoting the key if quoted.
fn split_key(line: &str, lineno: usize) -> Result<(String, &str), ManifestError> {
    // a quoted key may contain `=`; find the separator outside quotes
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => {
                let key = line[..i].trim();
                let key = key.strip_prefix('"').and_then(|k| k.strip_suffix('"')).unwrap_or(key);
                if key.is_empty() {
                    return Err(ManifestError { line: lineno, message: "empty key".to_string() });
                }
                return Ok((key.to_string(), line[i + 1..].trim()));
            }
            _ => {}
        }
    }
    Err(ManifestError { line: lineno, message: format!("expected `key = value`, got `{line}`") })
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ManifestError> {
    let text = text.trim();
    if let Some(body) = text.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| ManifestError {
            line: lineno,
            message: "unterminated array".to_string(),
        })?;
        let mut items = Vec::new();
        for item in split_array_items(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, lineno)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ManifestError {
                        line: lineno,
                        message: "arrays may only hold strings".to_string(),
                    });
                }
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(s) = text.strip_prefix('"') {
        let s = s.strip_suffix('"').ok_or_else(|| ManifestError {
            line: lineno,
            message: format!("unterminated string `{text}`"),
        })?;
        return Ok(Value::Str(s.replace("\\\"", "\"")));
    }
    let digits = text.replace('_', "");
    digits.parse::<i64>().map(Value::Int).map_err(|_| ManifestError {
        line: lineno,
        message: format!("expected an integer, string, or array, got `{text}`"),
    })
}

/// Splits array items on commas outside quotes.
fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                current.push(c);
                escaped = true;
            }
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => items.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    items.push(current);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pins_and_rule_sections() {
        let text = r#"
# top comment
[pins."crates/mvq-core/src/store.rs"]
FORMAT_VERSION = 1
TAG_MASKED = 0
"BlobKind::Artifact" = 0

[panic-path]
paths = ["crates/mvq-serve/src", "crates/mvq-core/src/store.rs"]
allow-expect = [
    "service lock",  # held only around queue ops
    "cache lock",
]

[unbounded-channel]
paths = ["crates/mvq-serve/src"]
"#;
        let m = Manifest::parse(text).unwrap();
        assert_eq!(m.pins.len(), 1);
        assert_eq!(m.pins[0].file, "crates/mvq-core/src/store.rs");
        assert_eq!(
            m.pins[0].pins,
            vec![
                ("FORMAT_VERSION".to_string(), 1),
                ("TAG_MASKED".to_string(), 0),
                ("BlobKind::Artifact".to_string(), 0),
            ]
        );
        assert_eq!(m.panic_paths.len(), 2);
        assert_eq!(m.allow_expect, vec!["service lock", "cache lock"]);
        assert_eq!(m.channel_paths, vec!["crates/mvq-serve/src"]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Manifest::parse("[pins.\"f.rs\"\nX = 1").is_err());
        assert!(Manifest::parse("[pins.\"f.rs\"]\nX = \"one\"").is_err());
        assert!(Manifest::parse("[mystery]\nX = 1").is_err());
        assert!(Manifest::parse("[panic-path]\nbogus = [\"a\"]").is_err());
        assert!(Manifest::parse("no equals sign").is_err());
    }

    #[test]
    fn comments_respect_strings() {
        let m = Manifest::parse("[panic-path]\npaths = [\"a#b\"] # trailing\nallow-expect = []\n")
            .unwrap();
        assert_eq!(m.panic_paths, vec!["a#b"]);
    }
}
