//! The lint driver: file walking, test-region masking, the
//! `lint:allow` escape hatch, and rule dispatch.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::lexer::{self, Line};
use crate::manifest::Manifest;
use crate::rules;

/// Every rule this lint enforces, by name. `lint:allow` comments must
/// name one of these.
pub const RULE_NAMES: &[&str] =
    &[rules::SAFETY, rules::TAGS, rules::PANICS, rules::LOCKS, rules::CHANNELS];

/// Diagnostic name for a malformed `lint:allow` comment itself.
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// A lexed file plus the per-line facts rules share.
pub struct FileView<'a> {
    /// Repo-relative path, forward slashes.
    pub path: &'a str,
    /// Lexical view of every line (see [`crate::lexer`]).
    pub lines: &'a [Line],
    /// Per-line flag: inside a `#[cfg(test)]` region (or a `tests/`
    /// integration-test file).
    pub is_test: &'a [bool],
}

/// Lints one file's source text against the manifest. Returns the
/// surviving diagnostics — rule findings minus `lint:allow`-suppressed
/// ones, plus any `allow-syntax` errors.
pub fn check_source(path: &str, source: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    let lines = lexer::lex(source);
    let is_test = test_mask(path, &lines);
    let view = FileView { path, lines: &lines, is_test: &is_test };

    let mut diags = Vec::new();
    diags.extend(rules::safety::check(&view));
    diags.extend(rules::tags::check(&view, manifest));
    diags.extend(rules::panics::check(&view, manifest));
    diags.extend(rules::locks::check(&view));
    diags.extend(rules::channels::check(&view, manifest));

    let (allows, mut syntax_diags) = parse_allows(path, &lines);
    diags.retain(|d| {
        !(allows.contains(&(d.line, d.rule.to_string()))
            || d.line > 1 && allows.contains(&(d.line - 1, d.rule.to_string())))
    });
    diags.append(&mut syntax_diags);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Walks the workspace tree (`crates/`, `src/`, `tests/` under `root`,
/// skipping `target/`, `vendor/`, and fixture directories) and lints
/// every `.rs` file.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading files.
pub fn check_workspace(root: &Path, manifest: &Manifest) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(check_source(&rel, &source, manifest));
    }
    Ok(diags)
}

/// Directory names never descended into: build output, vendored shims,
/// and the lint's own deliberately-violating fixture snippets.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Computes the per-line `#[cfg(test)]` mask via brace-scope tracking:
/// a `#[cfg(test)]` attribute arms the *next* brace to open a test
/// region, which lasts until its matching close. Files under `tests/`
/// are integration tests — masked entirely.
fn test_mask(path: &str, lines: &[Line]) -> Vec<bool> {
    if path.starts_with("tests/") || path.contains("/tests/") {
        return vec![true; lines.len()];
    }
    let mut mask = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // depth at which an open test region's brace sits; None = not in one
    let mut region_at: Option<i32> = None;
    let mut armed = false;
    for (i, line) in lines.iter().enumerate() {
        if region_at.is_some() {
            mask[i] = true;
        }
        if line.code.contains("#[cfg(test)]") {
            armed = true;
            mask[i] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed && region_at.is_none() {
                        region_at = Some(depth);
                        armed = false;
                        mask[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_at == Some(depth) {
                        region_at = None;
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

/// Parses escape hatches out of the file's comments — e.g.
/// `lint:allow(lock-scope) -- keys probed under the same guard, no I/O`.
/// Returns the set of `(line, rule)` suppressions (an allow covers its
/// own line and the next) and any `allow-syntax` diagnostics for
/// malformed attempts — an allow without a known rule name and a
/// written reason is itself a finding. Only the exact marker with the
/// immediately-following paren is parsed, so prose *mentioning* the
/// `lint:allow` syntax stays inert.
fn parse_allows(path: &str, lines: &[Line]) -> (HashSet<(usize, String)>, Vec<Diagnostic>) {
    let mut allows = HashSet::new();
    let mut diags = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let body = &rest[pos + "lint:allow(".len()..];
            rest = body;
            let Some(close) = body.find(')') else {
                diags.push(Diagnostic::new(
                    path,
                    lineno,
                    ALLOW_SYNTAX,
                    "unterminated `lint:allow(` — missing `)`",
                ));
                break;
            };
            let rule = body[..close].trim();
            rest = &body[close + 1..];
            if !RULE_NAMES.contains(&rule) {
                diags.push(Diagnostic::new(
                    path,
                    lineno,
                    ALLOW_SYNTAX,
                    format!(
                        "unknown rule `{rule}` in lint:allow (rules: {})",
                        RULE_NAMES.join(", ")
                    ),
                ));
                continue;
            }
            let after = rest.trim_start();
            let reason_ok = after
                .strip_prefix("--")
                .map(|r| {
                    let r = match r.find("lint:allow") {
                        Some(p) => &r[..p],
                        None => r,
                    };
                    !r.trim().is_empty()
                })
                .unwrap_or(false);
            if !reason_ok {
                diags.push(Diagnostic::new(
                    path,
                    lineno,
                    ALLOW_SYNTAX,
                    format!("lint:allow({rule}) needs a justification: `-- <reason>`"),
                ));
                continue;
            }
            allows.insert((lineno, rule.to_string()));
        }
    }
    (allows, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Manifest {
        Manifest::parse("[panic-path]\npaths = [\"src\"]\nallow-expect = []\n").unwrap()
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn a() { b(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn c() {}\n";
        let lines = lexer::lex(src);
        let mask = test_mask("src/lib.rs", &lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn tests_dir_is_fully_masked() {
        let lines = lexer::lex("fn t() { x.unwrap(); }\n");
        assert!(test_mask("tests/it.rs", &lines).iter().all(|&b| b));
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "// lint:allow(panic-path) -- invariant documented here\nfoo.unwrap();\nbar.unwrap();\n";
        let diags = check_source("src/lib.rs", src, &m());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "foo.unwrap(); // lint:allow(panic-path)\n";
        let diags = check_source("src/lib.rs", src, &m());
        assert!(diags.iter().any(|d| d.rule == ALLOW_SYNTAX), "{diags:?}");
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let src = "// lint:allow(no-such-rule) -- whatever\n";
        let diags = check_source("src/lib.rs", src, &m());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, ALLOW_SYNTAX);
    }
}
