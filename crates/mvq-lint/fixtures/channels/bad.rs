//! Violating: an unbounded channel where the backpressure rule applies.

use std::sync::mpsc;

/// Builds a queue with no capacity limit.
pub fn queue() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}
