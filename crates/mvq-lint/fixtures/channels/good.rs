//! Clean: the queue is bounded, so producers feel backpressure.

use std::sync::mpsc;

/// Builds the bounded job queue.
pub fn queue(capacity: usize) -> (mpsc::SyncSender<u32>, mpsc::Receiver<u32>) {
    mpsc::sync_channel(capacity)
}
