//! Clean: every `unsafe` has an adjacent safety comment.

/// Reads through a raw pointer.
pub fn read(p: *const f32) -> f32 {
    // SAFETY: caller guarantees p is valid for reads and aligned.
    unsafe { *p }
}

/// Documented unsafe fn: the doc section counts as the safety comment.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read_raw(p: *const f32) -> f32 {
    // SAFETY: contract forwarded from this fn's own # Safety section.
    unsafe { *p }
}
