//! Violating: an `unsafe` block with no safety comment anywhere near it.

/// Reads through a raw pointer without saying why that is sound.
pub fn read(p: *const f32) -> f32 {
    unsafe { *p }
}
