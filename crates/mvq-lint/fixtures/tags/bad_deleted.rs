//! Violating: `FORMAT_VERSION` is pinned but no longer declared here —
//! the pin points at nothing, so the guard can no longer see the value.

/// Blob kinds (these still match their pins).
pub enum Kind {
    /// First kind.
    A = 0,
    /// Second kind.
    B = 1,
}
