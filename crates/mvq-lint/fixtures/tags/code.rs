//! Clean: tag values match the fixture manifest's pins exactly.

/// Container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Blob kinds with pinned discriminants.
pub enum Kind {
    /// First kind.
    A = 0,
    /// Second kind.
    B = 1,
}

/// Encodes a kind (match-arm form of the same pins).
pub fn tag(k: Kind) -> u8 {
    match k {
        Kind::A => 0,
        Kind::B => 1,
    }
}

/// Decodes a tag (reversed-arm form).
pub fn from_tag(t: u8) -> Option<Kind> {
    match t {
        0 => Some(Kind::A),
        1 => Some(Kind::B),
        _ => None,
    }
}
