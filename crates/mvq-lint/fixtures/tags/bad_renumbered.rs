//! Violating: `Kind::B` was renumbered from 1 to 2 — existing blobs
//! written with tag 1 would now decode as the wrong variant.

/// Container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Blob kinds; `B`'s discriminant drifted from its pin.
pub enum Kind {
    /// First kind.
    A = 0,
    /// Second kind — renumbered!
    B = 2,
}

/// Encoder, drifted to match the enum.
pub fn tag(k: Kind) -> u8 {
    match k {
        Kind::A => 0,
        Kind::B => 2,
    }
}
