//! Violating: `Kind::C` was appended without appending its pin — the
//! manifest must grow in the same change that grows the enum.

/// Container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Blob kinds, one more than the manifest knows about.
pub enum Kind {
    /// First kind.
    A = 0,
    /// Second kind.
    B = 1,
    /// Appended kind, not yet pinned.
    C = 2,
}
