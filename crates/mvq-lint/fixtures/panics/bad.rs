//! Violating three ways: a bare `unwrap()`, a `panic!`, and an
//! `expect` whose message is not in the allowlist.

use std::sync::Mutex;

/// Panics all over a path that promised typed errors.
pub fn get(m: &Mutex<Option<u32>>) -> u32 {
    let slot = m.lock().expect("whatever happens happens");
    if slot.is_none() {
        panic!("empty slot");
    }
    slot.unwrap()
}
