//! Clean: typed errors on the fallible path, and the one `expect` uses
//! an allowlisted invariant message (`state lock`).

use std::sync::Mutex;

/// Returns the current value, or a typed error for the empty case.
pub fn get(m: &Mutex<Option<u32>>) -> Result<u32, String> {
    let slot = m.lock().expect("state lock");
    slot.ok_or_else(|| "empty".to_string())
}
