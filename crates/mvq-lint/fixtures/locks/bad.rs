//! Violating twice: a disk read while the guard is live, and a second
//! lock acquired under the first.

use std::sync::Mutex;

/// Reads from disk inside the critical section.
pub fn load(m: &Mutex<Vec<u8>>, path: &std::path::Path) -> std::io::Result<()> {
    let mut slot = m.lock().expect("slot lock");
    let bytes = std::fs::read(path)?;
    *slot = bytes;
    Ok(())
}

/// Takes two locks in one scope.
pub fn both(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = a.lock().expect("a lock");
    let y = b.lock().expect("b lock");
    *x + *y
}
