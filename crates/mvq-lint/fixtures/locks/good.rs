//! Clean: the disk read happens before the lock is taken, and the
//! critical section only publishes the bytes.

use std::sync::Mutex;

/// Reads the blob outside the critical section, then locks to publish.
pub fn load(m: &Mutex<Vec<u8>>, path: &std::path::Path) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    let mut slot = m.lock().expect("slot lock");
    *slot = bytes;
    Ok(())
}
