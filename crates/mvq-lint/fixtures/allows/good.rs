//! Clean: the finding below is deliberate and carries a well-formed
//! allow with a reason, so the file lints silent.

/// Reads through a raw pointer; the audit is suppressed with a reason.
pub fn read(p: *const f32) -> f32 {
    // lint:allow(safety-comment) -- fixture exercising the escape hatch
    unsafe { *p }
}
