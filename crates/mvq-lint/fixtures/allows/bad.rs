//! Violating: the allow names the right rule but gives no reason, so
//! it reports `allow-syntax` and suppresses nothing.

/// Reads through a raw pointer with a reasonless allow.
pub fn read(p: *const f32) -> f32 {
    // lint:allow(safety-comment)
    unsafe { *p }
}
