//! Fixture-driven tests: every rule must fire on its committed
//! violating snippet and stay silent on the clean one; the pinned
//! manifest must catch drift; and the binary must exit nonzero on each
//! violating fixture (the same contract CI relies on).

use std::path::{Path, PathBuf};
use std::process::Command;

use mvq_lint::{check_source, Manifest};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_manifest(name: &str) -> Manifest {
    let text = std::fs::read_to_string(fixtures_dir().join(name)).unwrap();
    Manifest::parse(&text).unwrap()
}

/// Lints one fixture file under the fixture manifest, using its
/// fixture-relative path (the paths the manifest's sections name).
fn lint_fixture(manifest: &Manifest, rel: &str) -> Vec<mvq_lint::Diagnostic> {
    let source = std::fs::read_to_string(fixtures_dir().join(rel)).unwrap();
    check_source(rel, &source, manifest)
}

#[test]
fn each_rule_fires_on_its_violating_fixture() {
    let manifest = fixture_manifest("lint.toml");
    for (rel, rule) in [
        ("safety/bad.rs", "safety-comment"),
        ("tags/bad_renumbered.rs", "tag-drift"),
        ("tags/bad_deleted.rs", "tag-drift"),
        ("tags/bad_unpinned.rs", "tag-drift"),
        ("panics/bad.rs", "panic-path"),
        ("locks/bad.rs", "lock-scope"),
        ("channels/bad.rs", "unbounded-channel"),
    ] {
        let diags = lint_fixture(&manifest, rel);
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{rel}: expected a {rule} finding, got {diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.rule == rule),
            "{rel}: fixture should only trip {rule}, got {diags:?}"
        );
    }
}

#[test]
fn each_rule_is_silent_on_its_clean_fixture() {
    let manifest = fixture_manifest("lint.toml");
    for rel in [
        "safety/good.rs",
        "tags/code.rs",
        "panics/good.rs",
        "locks/good.rs",
        "channels/good.rs",
        "allows/good.rs",
    ] {
        let diags = lint_fixture(&manifest, rel);
        assert!(diags.is_empty(), "{rel}: expected silence, got {diags:?}");
    }
}

#[test]
fn panics_fixture_reports_all_three_violations() {
    let manifest = fixture_manifest("lint.toml");
    let diags = lint_fixture(&manifest, "panics/bad.rs");
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(messages.iter().any(|m| m.contains("unwrap()")));
    assert!(messages.iter().any(|m| m.contains("`panic!`")));
    assert!(messages.iter().any(|m| m.contains("allow-expect")));
}

#[test]
fn pinned_manifest_drift_fails_the_clean_fixture() {
    // under the matching manifest tags/code.rs is silent; under
    // drift.toml (FORMAT_VERSION pinned at 2) the same file must fail
    let matching = fixture_manifest("lint.toml");
    assert!(lint_fixture(&matching, "tags/code.rs").is_empty());

    let drifted = fixture_manifest("drift.toml");
    let diags = lint_fixture(&drifted, "tags/code.rs");
    assert!(
        diags.iter().any(|d| d.rule == "tag-drift" && d.message.contains("FORMAT_VERSION")),
        "{diags:?}"
    );
}

#[test]
fn reasonless_allow_is_reported_and_suppresses_nothing() {
    let manifest = fixture_manifest("lint.toml");
    let diags = lint_fixture(&manifest, "allows/bad.rs");
    assert!(diags.iter().any(|d| d.rule == "allow-syntax"), "{diags:?}");
    assert!(diags.iter().any(|d| d.rule == "safety-comment"), "{diags:?}");
}

/// Runs the built binary against one fixture file, returning its exit
/// code and stdout.
fn run_binary(rel: &str, manifest: &str) -> (i32, String) {
    let fixtures = fixtures_dir();
    let output = Command::new(env!("CARGO_BIN_EXE_mvq-lint"))
        .arg("--root")
        .arg(&fixtures)
        .arg("--manifest")
        .arg(fixtures.join(manifest))
        .arg(fixtures.join(rel))
        .output()
        .expect("spawn mvq-lint");
    (output.status.code().unwrap_or(-1), String::from_utf8_lossy(&output.stdout).into_owned())
}

#[test]
fn binary_exits_nonzero_on_each_violating_fixture_and_zero_on_clean() {
    for rel in [
        "safety/bad.rs",
        "tags/bad_renumbered.rs",
        "tags/bad_deleted.rs",
        "tags/bad_unpinned.rs",
        "panics/bad.rs",
        "locks/bad.rs",
        "channels/bad.rs",
        "allows/bad.rs",
    ] {
        let (code, stdout) = run_binary(rel, "lint.toml");
        assert_eq!(code, 1, "{rel} should fail; stdout:\n{stdout}");
        assert!(stdout.contains(rel), "diagnostics name the file:\n{stdout}");
    }
    for rel in [
        "safety/good.rs",
        "tags/code.rs",
        "panics/good.rs",
        "locks/good.rs",
        "channels/good.rs",
        "allows/good.rs",
    ] {
        let (code, stdout) = run_binary(rel, "lint.toml");
        assert_eq!(code, 0, "{rel} should pass; stdout:\n{stdout}");
    }
}

#[test]
fn binary_workspace_run_is_clean() {
    // the repo root is two levels up from this crate; the real CI leg
    // (`cargo run -p mvq-lint -- --workspace`) must stay green
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = Command::new(env!("CARGO_BIN_EXE_mvq-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn mvq-lint");
    assert!(
        output.status.success(),
        "workspace lint regressed:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}
