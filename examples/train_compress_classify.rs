//! End-to-end pipeline on a real (small) classifier: train dense →
//! N:M prune + sparse fine-tune → masked k-means → int8 codebook →
//! masked-gradient codebook fine-tune → evaluate at every stage.
//!
//! ```text
//! cargo run --release --example train_compress_classify
//! ```

use mvq::core::{
    finetune_codebooks, prune_model, sparse_finetune, CodebookFinetuneConfig, GroupingStrategy,
    ModelCompressor, MvqConfig, PruneMethod, SparseFinetuneConfig,
};
use mvq::nn::data::SyntheticClassification;
use mvq::nn::models::resnet18_lite;
use mvq::nn::optim::{Optimizer, OptimizerKind};
use mvq::nn::train::{evaluate_classifier, train_classifier, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let data = SyntheticClassification::generate(6, 768, 256, 16, &mut rng);

    // 1. train the dense model
    let mut model = resnet18_lite(6, &mut rng);
    let tc = TrainConfig { epochs: 5, batch_size: 32, lr_decay: 0.85, verbose: true };
    let mut opt = Optimizer::new(OptimizerKind::sgd(0.04, 0.9, 1e-4));
    train_classifier(&mut model, &data, &tc, &mut opt, &mut rng)?;
    let dense_acc = evaluate_classifier(&mut model, &data)?;
    println!("dense accuracy:           {:.1}%", dense_acc * 100.0);

    // 2. 4:16 pruning + SR-STE sparse fine-tuning
    let grouping = GroupingStrategy::OutputChannelWise;
    let masks = prune_model(&mut model, grouping, 16, 4, 16)?;
    let pruned_acc = evaluate_classifier(&mut model, &data)?;
    println!("after 4:16 pruning:       {:.1}%", pruned_acc * 100.0);
    let sf = SparseFinetuneConfig {
        method: PruneMethod::SrSte { lambda: 2e-4 },
        epochs: 2,
        batch_size: 32,
        grouping,
        d: 16,
        keep_n: 4,
        m: 16,
    };
    let mut opt = Optimizer::new(OptimizerKind::sgd(0.01, 0.9, 0.0));
    sparse_finetune(&mut model, masks, &data, &sf, &mut opt, &mut rng)?;
    let sparse_acc = evaluate_classifier(&mut model, &data)?;
    println!("after sparse fine-tune:   {:.1}%", sparse_acc * 100.0);

    // 3. masked k-means + int8 codebook
    let cfg = MvqConfig::new(64, 16, 4, 16)?;
    let mut compressed = ModelCompressor::new(cfg).compress(&mut model, &mut rng)?;
    let clustered_acc = evaluate_classifier(&mut model, &data)?;
    println!(
        "after masked k-means:     {:.1}%  (CR {:.1}x)",
        clustered_acc * 100.0,
        compressed.compression_ratio()
    );

    // 4. masked-gradient codebook fine-tuning (Eq. 6)
    let ft =
        CodebookFinetuneConfig { epochs: 3, batch_size: 32, optimizer: OptimizerKind::adam(2e-3) };
    finetune_codebooks(&mut model, &mut compressed, &data, &ft, &mut rng)?;
    let final_acc = evaluate_classifier(&mut model, &data)?;
    println!("after codebook fine-tune: {:.1}%", final_acc * 100.0);
    println!(
        "\nsummary: dense {:.1}% -> compressed {:.1}% at {:.1}x compression, 75% sparsity",
        dense_acc * 100.0,
        final_acc * 100.0,
        compressed.compression_ratio()
    );
    Ok(())
}
