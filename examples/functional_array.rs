//! Execute a convolution *through the modeled hardware*: compress the
//! weights with MVQ, then run the functional EWS array — CRF lookups,
//! mask-LUT decodes, AND gates and sparse tiles — and compare against the
//! dense array and a reference GEMM.
//!
//! ```text
//! cargo run --release --example functional_array
//! ```

use mvq::accel::{FunctionalEws, HwConfig, HwSetting};
use mvq::core::{MvqCompressor, MvqConfig};
use mvq::tensor::kaiming_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    // A GEMM-lowered conv layer: 128 output channels, 64*3*3 reduction,
    // 14x14 output plane.
    let (k, r, e2) = (128usize, 64 * 9, 196usize);
    let weights = kaiming_normal(vec![k, r], r, &mut rng);
    let ifmap = mvq::tensor::uniform(vec![r, e2], -1.0, 1.0, &mut rng);

    // Compress the weights: k=256 codewords, d=16, 4:16.
    let cfg = MvqConfig::new(256, 16, 4, 16)?;
    let compressed = MvqCompressor::new(cfg).compress_matrix(&weights, &mut rng)?;
    let decoded = compressed.reconstruct()?;
    println!(
        "weights: [{k}, {r}] compressed {:.1}x, {:.0}% sparse",
        compressed.compression_ratio(),
        decoded.sparsity() * 100.0
    );

    // Run all three paths on a 32x32 array.
    let sparse_hw = FunctionalEws::new(HwConfig::new(HwSetting::EwsCms, 32)?);
    let dense_hw = FunctionalEws::new(HwConfig::new(HwSetting::Ews, 32)?);
    let dense = dense_hw.run_dense(&decoded, &ifmap)?;
    let sparse = sparse_hw.run_compressed(&compressed, &ifmap)?;
    let reference = dense_hw.reference(&decoded, &ifmap)?;

    let max_err = sparse
        .ofmap
        .data()
        .iter()
        .zip(reference.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nsparse-tile output vs reference GEMM: max |err| = {max_err:.2e}");
    println!("\n{:<22} {:>12} {:>12}", "", "dense array", "sparse array");
    println!(
        "{:<22} {:>12} {:>12}",
        "multiplies executed", dense.macs_executed, sparse.macs_executed
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "weight-load cycles", dense.weight_load_cycles, sparse.weight_load_cycles
    );
    println!("{:<22} {:>12} {:>12}", "total cycles", dense.cycles, sparse.cycles);
    println!(
        "\nthe sparse tile computes the same ofmap with {:.1}x fewer multiplies and a {:.1}x\n\
         narrower weight-load stream — the paper's co-design in action.",
        dense.macs_executed as f64 / sparse.macs_executed as f64,
        dense.weight_load_cycles as f64 / sparse.weight_load_cycles as f64
    );
    Ok(())
}
