//! Design-space exploration: sweep the MVQ hyperparameters (k, d, N:M)
//! over one weight block and chart the compression-ratio / clustering-error
//! frontier — the trade-off the paper's Fig. 13 navigates.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mvq::core::pipeline::{by_name, PipelineSpec};
use mvq::tensor::kaiming_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);
    // a mid-size conv layer: 128x64x3x3
    let weight = kaiming_normal(vec![128, 64, 3, 3], 64 * 9, &mut rng);
    let norm = weight.sq_norm();
    println!("weight block: {:?} ({} params)\n", weight.dims(), weight.numel());
    println!(
        "{:>6} {:>4} {:>6} {:>8} {:>12} {:>14}",
        "k", "d", "N:M", "CR", "masked SSE", "SSE/||W||^2"
    );
    for &(keep_n, m) in &[(4usize, 16usize), (8, 16), (2, 4)] {
        for &d in &[8usize, 16] {
            if d % m != 0 {
                continue;
            }
            for &k in &[32usize, 128, 512] {
                let spec = PipelineSpec::default().with_k(k).with_d(d).with_nm(keep_n, m);
                let c = by_name("mvq", &spec)?.compress_matrix(&weight, &mut rng)?;
                let mask = c.mask().expect("mvq stores a mask");
                let grouped = mvq::core::GroupingStrategy::OutputChannelWise.group(&weight, d)?;
                let pruned = mask.apply(&grouped)?;
                let sse = mvq::core::masked_sse(
                    &pruned,
                    mask,
                    c.codebook().expect("codebook"),
                    c.assignments().expect("assignments"),
                )?;
                println!(
                    "{:>6} {:>4} {:>4}:{:<2} {:>7.1}x {:>12.2} {:>13.4}",
                    k,
                    d,
                    keep_n,
                    m,
                    c.compression_ratio(),
                    sse,
                    sse / norm
                );
            }
        }
    }
    println!("\nreading the frontier: larger k or smaller d cut SSE but cost ratio;");
    println!("higher sparsity (4:16) buys FLOPs and lets few codewords focus on survivors.");
    Ok(())
}
