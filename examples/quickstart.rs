//! Quickstart: run every registered compression algorithm on one weight
//! matrix through the unified `Compressor` pipeline, then inspect the MVQ
//! artifact in detail.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mvq::core::masked_sse;
use mvq::core::pipeline::{by_name, registry, PipelineSpec};
use mvq::tensor::kaiming_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // A conv-like weight: 64 output channels, 32 input channels, 3x3.
    let weight = kaiming_normal(vec![64, 32, 3, 3], 32 * 9, &mut rng);
    println!("dense weight: {:?} = {} params\n", weight.dims(), weight.numel());

    // Every algorithm, one loop, one API.
    println!("{:<6} {:>8} {:>8} {:>10}  config", "name", "CR", "sparse%", "SSE");
    for comp in registry() {
        let mut rng = StdRng::seed_from_u64(42);
        let artifact = comp.compress_matrix(&weight, &mut rng)?;
        let recon = artifact.reconstruct()?;
        println!(
            "{:<6} {:>7.1}x {:>7.1}% {:>10}  {}",
            comp.name(),
            artifact.compression_ratio(),
            recon.sparsity() * 100.0,
            artifact.sse().map_or_else(|| "-".into(), |s| format!("{s:.2}")),
            comp.config_summary(),
        );
    }

    // MVQ in detail: 128 codewords of length 16, 4:16 pruning (75%
    // sparsity), int8 codebook — the paper's EWS-CMS operating point.
    let spec = PipelineSpec::default().with_k(128);
    let mvq = by_name("mvq", &spec)?;
    let compressed = mvq.compress_matrix(&weight, &mut rng)?;

    let storage = compressed.storage();
    println!("\nMVQ storage breakdown (Eq. 7):");
    println!("  assignments: {:>9} bits", storage.assignment_bits);
    println!("  masks (LUT): {:>9} bits", storage.mask_bits);
    println!("  codebook:    {:>9} bits", storage.codebook_bits);
    println!("  compression ratio: {:.1}x", compressed.compression_ratio());

    // The clustering error that matters: masked SSE on the kept weights.
    let mask = compressed.mask().expect("mvq stores a mask");
    let grouped = mvq::core::GroupingStrategy::OutputChannelWise.group(&weight, 16)?;
    let pruned = mask.apply(&grouped)?;
    let sse = masked_sse(
        &pruned,
        mask,
        compressed.codebook().expect("mvq has a codebook"),
        compressed.assignments().expect("mvq has assignments"),
    )?;
    println!("masked clustering SSE: {sse:.2}");
    Ok(())
}
