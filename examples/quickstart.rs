//! Quickstart: compress one weight matrix with MVQ and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mvq::core::{masked_sse, MvqCompressor, MvqConfig};
use mvq::tensor::kaiming_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // A conv-like weight: 64 output channels, 32 input channels, 3x3.
    let weight = kaiming_normal(vec![64, 32, 3, 3], 32 * 9, &mut rng);
    println!("dense weight: {:?} = {} params", weight.dims(), weight.numel());

    // MVQ: 128 codewords of length 16, 4:16 pruning (75% sparsity),
    // int8 codebook — the paper's EWS-CMS operating point.
    let cfg = MvqConfig::new(128, 16, 4, 16)?;
    let compressed = MvqCompressor::new(cfg).compress_matrix(&weight, &mut rng)?;

    let storage = compressed.storage();
    println!("\nstorage breakdown (Eq. 7):");
    println!("  assignments: {:>9} bits", storage.assignment_bits);
    println!("  masks (LUT): {:>9} bits", storage.mask_bits);
    println!("  codebook:    {:>9} bits", storage.codebook_bits);
    println!("  compression ratio: {:.1}x", compressed.compression_ratio());

    // Decode and check the reconstruction.
    let reconstructed = compressed.reconstruct()?;
    assert_eq!(reconstructed.dims(), weight.dims());
    println!("\nreconstruction sparsity: {:.1}%", reconstructed.sparsity() * 100.0);

    // The clustering error that matters: masked SSE on the kept weights.
    let grouped = compressed.mask();
    let pruned = {
        let g = mvq::core::GroupingStrategy::OutputChannelWise.group(&weight, 16)?;
        grouped.apply(&g)?
    };
    let sse = masked_sse(&pruned, compressed.mask(), compressed.codebook(), compressed.assignments())?;
    println!("masked clustering SSE: {sse:.2}");
    Ok(())
}
