//! Simulate the six hardware settings of the paper (§7.1) on ResNet-18 at
//! ImageNet scale and print latency, energy-efficiency, and area.
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use mvq::accel::{area_report, simulate_network, workloads, HwConfig, HwSetting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = workloads::resnet18();
    println!(
        "ResNet-18 @ 224x224: {:.2} GMACs, {:.1}M conv weights\n",
        net.total_macs() as f64 / 1e9,
        net.total_weights() as f64 / 1e6
    );
    for size in [16usize, 32, 64] {
        println!("--- array {size}x{size} ---");
        println!(
            "{:<8} {:>10} {:>9} {:>9} {:>11} {:>10}",
            "setting", "cycles", "ms", "TOPS", "TOPS/W", "array mm2"
        );
        let base_cycles = simulate_network(&HwConfig::new(HwSetting::Ws, size)?, &net).cycles;
        for setting in HwSetting::ALL {
            let cfg = HwConfig::new(setting, size)?;
            let r = simulate_network(&cfg, &net);
            let area = area_report(&cfg)?;
            println!(
                "{:<8} {:>10.0} {:>9.2} {:>9.2} {:>11.2} {:>10.3}  ({:.2}x vs WS)",
                setting.name(),
                r.cycles,
                r.runtime_s() * 1e3,
                r.tops(),
                r.tops_per_watt(),
                area.array_with_crf_mm2(),
                base_cycles / r.cycles,
            );
        }
        println!();
    }
    Ok(())
}
