//! Concurrency stress test for the sharded artifact cache: 16 threads
//! hammer get/put across every shard of one disk-backed, byte-budgeted
//! cache while the test asserts the cache's standing invariants at every
//! observable instant:
//!
//! * **budgets are hard caps** — `memory_bytes()`/`disk_bytes()` never
//!   exceed their budgets, not even transiently, because admission
//!   reserves bytes (CAS on the cache-wide totals) before inserting;
//! * **hits are bit-identical** — a served blob always equals the
//!   reference encoding of a fresh compression for its key, no matter
//!   how many evictions, re-puts, and cross-shard races it survived;
//! * **stats sum coherently across shards** — every `get` is exactly one
//!   hit or one miss, every `put` is exactly one insertion, with the
//!   per-shard counters merged on read.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mvq::core::pipeline::{by_name, PipelineSpec};
use mvq::core::store::{ArtifactCache, CacheBudget, CacheKey, Persist};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: usize = 16;
const OPS_PER_THREAD: usize = 200;
const KEYS: usize = 24;

/// A tiny deterministic PCG-style generator so each thread gets its own
/// reproducible op/key stream without sharing an RNG lock.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn sharded_cache_survives_16_submitters_without_breaking_budgets() {
    let dir = std::env::temp_dir().join(format!("mvq-shard-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // KEYS equal-shape artifacts (the spec is fixed, only the seed moves,
    // so every blob has the same size and budget math is exact)
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let weight = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let spec = PipelineSpec { k: 8, swap_trials: 50, ..PipelineSpec::default() };
    let compressor = by_name("mvq", &spec).expect("valid spec");
    let mut keys = Vec::with_capacity(KEYS);
    let mut reference: Vec<Arc<[u8]>> = Vec::with_capacity(KEYS);
    for seed in 0..KEYS as u64 {
        let artifact = compressor
            .compress_matrix(&weight, &mut StdRng::seed_from_u64(seed))
            .expect("compress");
        keys.push(CacheKey::new("mvq", &weight, &spec, seed).expect("key"));
        reference.push(artifact.to_bytes().expect("encode").into());
    }
    let blob = reference[0].len() as u64;
    assert!(reference.iter().all(|r| r.len() as u64 == blob), "blobs must be equal-sized");

    // caps well below KEYS blobs, so the threads fight over admission and
    // eviction constantly; memory tighter than disk so both LRUs churn
    let mem_cap = 8 * blob;
    let disk_cap = 12 * blob;
    let budget = CacheBudget { memory_bytes: Some(mem_cap), disk_bytes: Some(disk_cap) };
    let cache = ArtifactCache::with_dir_and_budget(&dir, budget).expect("cache dir");
    assert!(cache.shard_count() > 1, "the stress test must span multiple shards");

    let overshoot = AtomicBool::new(false);
    let (gets, puts): (usize, usize) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let (cache, keys, reference, overshoot) = (&cache, &keys, &reference, &overshoot);
                scope.spawn(move || {
                    let mut lcg = Lcg(0x5EED + tid as u64);
                    let (mut gets, mut puts) = (0usize, 0usize);
                    for _ in 0..OPS_PER_THREAD {
                        let idx = (lcg.next() % KEYS as u64) as usize;
                        let key = &keys[idx];
                        match lcg.next() % 3 {
                            0 => {
                                gets += 1;
                                if let Some(bytes) = cache.get_raw(key).expect("get") {
                                    assert_eq!(
                                        &*bytes, &*reference[idx],
                                        "hit diverged from recompression for key {idx}"
                                    );
                                }
                            }
                            1 => {
                                puts += 1;
                                cache.put_raw(key, Arc::clone(&reference[idx])).expect("put");
                            }
                            _ => {
                                gets += 1;
                                match cache.get_raw(key).expect("get") {
                                    Some(bytes) => assert_eq!(
                                        &*bytes, &*reference[idx],
                                        "hit diverged from recompression for key {idx}"
                                    ),
                                    None => {
                                        puts += 1;
                                        cache
                                            .put_raw(key, Arc::clone(&reference[idx]))
                                            .expect("put");
                                    }
                                }
                            }
                        }
                        // the budget invariant must hold at every instant,
                        // observed mid-churn from a racing thread
                        if cache.memory_bytes() > mem_cap || cache.disk_bytes() > disk_cap {
                            overshoot.store(true, Ordering::Relaxed);
                        }
                    }
                    (gets, puts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread"))
            .fold((0, 0), |(g, p), (tg, tp)| (g + tg, p + tp))
    });

    assert!(!overshoot.load(Ordering::Relaxed), "a byte budget was exceeded mid-run");
    assert!(cache.memory_bytes() <= mem_cap, "memory budget exceeded at rest");
    assert!(cache.disk_bytes() <= disk_cap, "disk budget exceeded at rest");

    // per-shard counters must merge into exactly-once accounting
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, gets as u64, "{stats:?}");
    assert_eq!(stats.insertions, puts as u64, "{stats:?}");
    assert_eq!(stats.corrupt_rejections, 0, "{stats:?}");
    assert!(stats.hits > 0, "the stress run never hit — caps are too tight to test hits");
    assert!(stats.memory_evictions > 0, "the memory budget never forced an eviction");

    // every survivor must still be bit-identical after all the churn
    let mut survivors = 0;
    for (idx, key) in keys.iter().enumerate() {
        if let Some(bytes) = cache.get_raw(key).expect("final get") {
            assert_eq!(&*bytes, &*reference[idx], "post-run blob diverged for key {idx}");
            survivors += 1;
        }
    }
    assert!(survivors > 0, "nothing survived the run");
    let _ = std::fs::remove_dir_all(&dir);
}
