//! Trait-conformance tests: every compressor in the pipeline registry must
//! honor the shared `Compressor` / `CompressedArtifact` contract on the
//! same seeded weight matrix — and the compression service must serve
//! cache hits, dedup shares, and the deprecated v1 batch path
//! bit-identical to fresh compressions, deterministically across
//! submission order, batching, worker interleaving, and cache eviction.

use mvq::core::pipeline::{by_name, registry, PipelineSpec, ALGORITHM_NAMES};
use mvq::core::store::CacheBudget;
use mvq::core::{CompressedArtifact, KernelStrategy, ModelCompressor, MvqConfig, Parallelism};
use mvq::serve::{
    BatchCompressionService, CachePolicy, CompressionJob, CompressionRequest, CompressionService,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_weight() -> mvq::tensor::Tensor {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    mvq::tensor::kaiming_normal(vec![64, 32], 32, &mut rng)
}

#[test]
fn every_registered_compressor_satisfies_the_contract() {
    let w = test_weight();
    for comp in registry() {
        let name = comp.name();
        let mut rng = StdRng::seed_from_u64(7);
        let artifact = comp
            .compress_matrix(&w, &mut rng)
            .unwrap_or_else(|e| panic!("{name}: compression failed: {e}"));

        // reconstruction round-trips the shape
        let recon = artifact.reconstruct().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(recon.dims(), w.dims(), "{name}: reconstruct dims");
        assert_eq!(artifact.orig_dims(), w.dims(), "{name}: orig_dims");

        // it actually compresses
        let ratio = artifact.compression_ratio();
        assert!(ratio > 1.0, "{name}: ratio {ratio} not > 1");

        // storage breakdown is self-consistent
        let s = artifact.storage();
        assert_eq!(s.original_bits, w.numel() as u64 * 32, "{name}: original bits");
        assert!(s.compressed_bits() > 0, "{name}: zero compressed bits");
        assert_eq!(
            s.compressed_bits(),
            s.assignment_bits + s.mask_bits + s.codebook_bits,
            "{name}: breakdown does not sum"
        );
        let expected = s.original_bits as f64 / s.compressed_bits() as f64;
        assert!((ratio - expected).abs() < 1e-9, "{name}: ratio formula");

        // masked representations decode sparsely, dense ones keep a mask
        // bit count of zero
        if let Some(mask) = artifact.mask() {
            assert!(s.mask_bits > 0, "{name}: mask stored but unbilled");
            assert!(
                (recon.sparsity() - mask.sparsity()).abs() < 0.05,
                "{name}: sparsity {} vs mask {}",
                recon.sparsity(),
                mask.sparsity()
            );
        } else {
            assert_eq!(s.mask_bits, 0, "{name}: mask bits without a mask");
        }

        // every current algorithm records a compression-time SSE
        assert!(artifact.sse().is_some(), "{name}: missing SSE");

        // deterministic under a fixed seed
        let mut rng2 = StdRng::seed_from_u64(7);
        let again = comp.compress_matrix(&w, &mut rng2).expect("second run");
        assert_eq!(
            again.reconstruct().expect("reconstruct").data(),
            recon.data(),
            "{name}: nondeterministic under fixed seed"
        );
    }
}

#[test]
fn blocked_kernel_produces_identical_artifacts_to_naive() {
    // The registry-level guarantee behind KernelStrategy::Blocked being
    // the default: for every algorithm, switching the kernel from the
    // naive oracle to the blocked one changes nothing observable —
    // reconstruction bits, storage accounting, recorded SSE.
    let w = test_weight();
    let base = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    for name in ALGORITHM_NAMES {
        let run = |kernel: KernelStrategy| {
            let spec = base.clone().with_kernel(kernel);
            by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(17))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let naive = run(KernelStrategy::Naive);
        let blocked = run(KernelStrategy::Blocked);
        assert_eq!(
            naive.reconstruct().unwrap().data(),
            blocked.reconstruct().unwrap().data(),
            "{name}: blocked reconstruction diverges from naive"
        );
        assert_eq!(naive.storage(), blocked.storage(), "{name}: storage diverges");
        match (naive.sse(), blocked.sse()) {
            (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{name}: SSE diverges"),
            (a, b) => assert_eq!(a, b, "{name}: SSE presence diverges"),
        }
        assert!(
            (naive.compression_ratio() - blocked.compression_ratio()).abs() < f64::EPSILON,
            "{name}: ratio diverges"
        );
    }
}

#[test]
fn simd_kernel_matches_naive_for_every_algorithm() {
    // The reassociating-kernel registry contract: switching any algorithm
    // from the naive oracle to `simd` leaves assignments — and therefore
    // the reconstructed weights, bit for bit — identical; only the
    // recorded clustering SSE may move, and at most by the pinned ULP
    // bound. Runs in debug and `--release` via CI (including the
    // target-cpu=native leg, where target-feature-dependent codegen would
    // surface).
    let w = test_weight();
    let base = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    for name in ALGORITHM_NAMES {
        let run = |kernel: KernelStrategy| {
            let spec = base.clone().with_kernel(kernel);
            by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(17))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let naive = run(KernelStrategy::Naive);
        let simd = run(KernelStrategy::Simd);
        assert_eq!(
            naive.assignments().map(|a| a.indices().to_vec()),
            simd.assignments().map(|a| a.indices().to_vec()),
            "{name}: simd assignments diverge from naive"
        );
        assert_eq!(
            naive.reconstruct().unwrap().data(),
            simd.reconstruct().unwrap().data(),
            "{name}: simd reconstruction diverges from naive"
        );
        assert_eq!(naive.storage(), simd.storage(), "{name}: storage diverges");
        match (naive.sse(), simd.sse()) {
            (Some(a), Some(b)) => {
                let ulp = mvq::core::differential::ulp_distance(a, b);
                assert!(
                    ulp <= mvq::core::REASSOC_SSE_ULP_BOUND,
                    "{name}: SSE {a} vs {b} diverges by {ulp} ULPs"
                );
            }
            (a, b) => assert_eq!(a, b, "{name}: SSE presence diverges"),
        }
    }
}

#[test]
fn simd_and_minibatch_kernels_are_deterministic_for_every_algorithm() {
    // Per-seed determinism for the two non-default strategies: simd
    // (reassociated but fixed-order lane accumulation) and minibatch run
    // under a simd-aware dispatch — two runs with one seed must be
    // bit-identical.
    let w = test_weight();
    for kernel in [KernelStrategy::Simd, KernelStrategy::Minibatch] {
        let spec =
            PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() }.with_kernel(kernel);
        for name in ALGORITHM_NAMES {
            let run = || {
                by_name(name, &spec)
                    .expect("valid spec")
                    .compress_matrix(&w, &mut StdRng::seed_from_u64(29))
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            };
            let a = run();
            let b = run();
            assert_eq!(
                a.reconstruct().unwrap().data(),
                b.reconstruct().unwrap().data(),
                "{name}: {kernel:?} nondeterministic under a fixed seed"
            );
            assert_eq!(
                a.sse().map(f32::to_bits),
                b.sse().map(f32::to_bits),
                "{name}: {kernel:?} SSE nondeterministic under a fixed seed"
            );
        }
    }
}

#[test]
fn minibatch_kernel_is_deterministic_for_every_algorithm() {
    let w = test_weight();
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() }
        .with_kernel(KernelStrategy::Minibatch);
    for name in ALGORITHM_NAMES {
        let run = || {
            by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(23))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.reconstruct().unwrap().data(),
            b.reconstruct().unwrap().data(),
            "{name}: minibatch nondeterministic under a fixed seed"
        );
        assert!(a.compression_ratio() > 1.0, "{name}: minibatch artifact does not compress");
    }
}

#[test]
fn registry_names_are_unique_and_match() {
    let names: Vec<&str> = registry().iter().map(|c| c.name()).collect();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate registry names");
    for name in ALGORITHM_NAMES {
        assert!(by_name(name, &PipelineSpec::default()).is_ok(), "{name} missing from by_name");
    }
}

#[test]
fn model_level_dispatch_works_for_every_algorithm() {
    // A cheap spec so DKM/PQF stay fast on the tiny model.
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    for comp in mvq::core::pipeline::registry_with(&spec).expect("valid spec") {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = mvq::nn::models::tiny_cnn(4, 8, &mut rng);
        let artifacts = comp
            .compress_model(&mut model, &mut rng)
            .unwrap_or_else(|e| panic!("{}: {e}", comp.name()));
        assert_eq!(artifacts.algorithm, comp.name());
        assert!(!artifacts.layers.is_empty(), "{}: no layers", comp.name());
        assert!(artifacts.compression_ratio() > 1.0, "{}", comp.name());
    }
}

#[test]
fn trait_object_and_concrete_mvq_agree() {
    // dispatching "mvq" through the registry must equal calling the
    // concrete compressor with the same seed
    let w = test_weight();
    let spec = PipelineSpec::default();
    let via_registry =
        by_name("mvq", &spec).unwrap().compress_matrix(&w, &mut StdRng::seed_from_u64(9)).unwrap();
    let cfg = MvqConfig::new(spec.k, spec.d, spec.keep_n, spec.m)
        .unwrap()
        .with_grouping(spec.grouping)
        .with_codebook_bits(spec.codebook_bits);
    let concrete = mvq::core::MvqCompressor::new(cfg)
        .compress_matrix(&w, &mut StdRng::seed_from_u64(9))
        .unwrap();
    assert_eq!(via_registry.reconstruct().unwrap().data(), concrete.reconstruct().unwrap().data());
}

fn artifact_bits(a: &CompressedArtifact) -> Vec<u32> {
    a.reconstruct().expect("reconstruct").data().iter().map(|v| v.to_bits()).collect()
}

#[test]
#[allow(deprecated)]
fn ticket_and_v1_paths_match_fresh_compression_for_every_algorithm() {
    // The service contract across both API generations: a ticket served
    // by `CompressionService` (cold and from cache), an outcome from the
    // deprecated v1 `submit` shim, and a fresh registry compression with
    // the same seed must all reconstruct the exact same bit pattern.
    let w = test_weight();
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let service = CompressionService::builder().workers(2).build().unwrap();
    let v1 = BatchCompressionService::in_memory();
    for name in ALGORITHM_NAMES {
        let request = || {
            CompressionRequest::builder(name, w.clone(), name)
                .spec(spec.clone())
                .seed(41)
                .build()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let cold = service.submit_one(request()).wait().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!cold.from_cache, "{name}: first submission must compress");
        let warm = service.submit_one(request()).wait().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(warm.from_cache, "{name}: second submission must hit");
        let batch = v1
            .submit(vec![CompressionJob::new(name, w.clone(), name, spec.clone()).with_seed(41)])
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let fresh = by_name(name, &spec)
            .expect("valid spec")
            .compress_matrix(&w, &mut StdRng::seed_from_u64(41))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (label, served) in [
            ("cold ticket", cold.artifact().expect("decode")),
            ("warm ticket", warm.artifact().expect("decode")),
            ("v1 submit", batch.outcomes[0].artifact().expect("decode")),
        ] {
            let served = &served;
            assert_eq!(
                artifact_bits(served),
                artifact_bits(&fresh),
                "{name}: {label} serve diverges from a fresh compression"
            );
            assert_eq!(served.storage(), fresh.storage(), "{name}: {label} storage");
        }
    }
}

#[test]
fn concurrent_submitters_get_bit_identical_artifacts() {
    // Worker interleaving must be unobservable: four submitter threads
    // race the same pinned-seed job set (mixed priorities, duplicates in
    // flight) into one pooled service, twice over — every outcome must
    // equal the fresh single-threaded compression, bit for bit.
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let mut wrng = StdRng::seed_from_u64(0xD1CE);
    let weights: Vec<mvq::tensor::Tensor> =
        (0..3).map(|_| mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut wrng)).collect();
    let algos = ["mvq", "vq-a", "pvq"];
    let fresh: Vec<Vec<u32>> = weights
        .iter()
        .zip(algos)
        .map(|(w, algo)| {
            let artifact = by_name(algo, &spec)
                .unwrap()
                .compress_matrix(w, &mut StdRng::seed_from_u64(77))
                .unwrap();
            artifact_bits(&artifact)
        })
        .collect();
    for round in 0..2 {
        let service = CompressionService::builder().workers(4).build().unwrap();
        std::thread::scope(|scope| {
            for submitter in 0..4 {
                let service = &service;
                let weights = &weights;
                let spec = &spec;
                let fresh = &fresh;
                scope.spawn(move || {
                    let priority = if submitter % 2 == 0 {
                        mvq::serve::Priority::High
                    } else {
                        mvq::serve::Priority::Low
                    };
                    let tickets: Vec<mvq::serve::Ticket> = weights
                        .iter()
                        .zip(algos)
                        .map(|(w, algo)| {
                            let request = CompressionRequest::builder(
                                format!("s{submitter}-{algo}"),
                                w.clone(),
                                algo,
                            )
                            .spec(spec.clone())
                            .seed(77)
                            .priority(priority)
                            .build()
                            .unwrap();
                            service.submit_one(request)
                        })
                        .collect();
                    for (i, ticket) in tickets.into_iter().enumerate() {
                        let outcome = ticket.wait().unwrap();
                        assert_eq!(
                            artifact_bits(&outcome.artifact().expect("decode")),
                            fresh[i],
                            "round {round}, submitter {submitter}: interleaving changed bits"
                        );
                    }
                });
            }
        });
    }
}

#[test]
fn memory_eviction_under_byte_budget_is_lru_and_never_exceeds() {
    // A service whose cache policy caps resident bytes at roughly two
    // artifacts: the least-recently-used entry is evicted, the budget is
    // never exceeded, and an evicted key simply recompresses to the same
    // bits.
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let probe = {
        let service = CompressionService::builder().workers(1).build().unwrap();
        let request = CompressionRequest::builder("probe", test_weight(), "mvq")
            .spec(spec.clone())
            .seed(0)
            .build()
            .unwrap();
        service.submit_one(request).wait().unwrap();
        service.cache().memory_bytes()
    };
    let cap = 2 * probe;
    let service = CompressionService::builder()
        .workers(1)
        .cache_policy(CachePolicy::UNBOUNDED.with_memory_budget(cap))
        .build()
        .unwrap();
    assert_eq!(service.cache().budget(), CacheBudget::UNBOUNDED.with_memory_bytes(cap));
    let submit = |seed: u64| {
        let request = CompressionRequest::builder(format!("job-{seed}"), test_weight(), "mvq")
            .spec(spec.clone())
            .seed(seed)
            .build()
            .unwrap();
        let outcome = service.submit_one(request).wait().unwrap();
        assert!(
            service.cache().memory_bytes() <= cap,
            "budget exceeded: {} > {cap}",
            service.cache().memory_bytes()
        );
        outcome
    };
    let first = submit(1);
    submit(2);
    submit(1); // touch: seed 2 becomes the LRU victim
    submit(3); // evicts seed 2
    let stats = service.cache_stats();
    assert_eq!(stats.memory_evictions, 1, "{stats:?}");
    assert!(submit(1).from_cache, "recently used entry was evicted");
    let recompressed = submit(2);
    assert!(!recompressed.from_cache, "LRU entry survived eviction");
    assert_eq!(
        artifact_bits(&recompressed.artifact().expect("decode")),
        artifact_bits(&submit(2).artifact().expect("decode")),
        "eviction changed served bits"
    );
    let _ = first;
}

#[test]
fn disk_eviction_respects_budget_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("mvq-evict-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let submit = |service: &CompressionService, seed: u64| {
        let request = CompressionRequest::builder(format!("job-{seed}"), test_weight(), "mvq")
            .spec(spec.clone())
            .seed(seed)
            .build()
            .unwrap();
        service.submit_one(request).wait().unwrap()
    };

    // fill an unbudgeted disk cache with three blobs, oldest first (the
    // sleeps order modification times for the restart's LRU scan)
    let blob_len = {
        let service = CompressionService::with_cache_dir(&dir).unwrap();
        for seed in 1..=3 {
            submit(&service, seed);
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert_eq!(service.cache().disk_len(), 3);
        service.cache().disk_bytes() / 3
    };

    // restart under a two-blob budget: the scan must prune the stalest
    // blob first and never exceed the budget afterwards
    let cap = 2 * blob_len + blob_len / 2;
    let service = CompressionService::builder()
        .workers(1)
        .cache_dir(&dir)
        .cache_policy(CachePolicy::UNBOUNDED.with_disk_budget(cap))
        .build()
        .unwrap();
    assert_eq!(service.cache().disk_len(), 2, "restart did not prune to the budget");
    assert!(service.cache().disk_bytes() <= cap);
    assert_eq!(service.cache_stats().disk_evictions, 1);
    assert!(!submit(&service, 1).from_cache, "stalest blob must be the eviction victim");
    assert!(submit(&service, 3).from_cache, "freshest blob must survive the restart prune");
    // the put for seed 1 re-evicted the then-LRU blob; the budget held
    assert!(service.cache().disk_bytes() <= cap);
    assert_eq!(service.cache().disk_len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[allow(deprecated)]
fn service_is_deterministic_across_order_and_batching() {
    // The same job set — shuffled, and split one-job-per-batch (serial)
    // vs one big batch (parallel fan-out) — must produce bit-identical
    // artifacts per job name and the same dedupe/hit accounting. Runs on
    // the deprecated v1 shim deliberately: its BatchReport accounting is
    // part of the compatibility contract the shim must preserve.
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let mut wrng = StdRng::seed_from_u64(0xBEEF);
    let weights: Vec<mvq::tensor::Tensor> =
        (0..4).map(|_| mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut wrng)).collect();
    let jobs = || -> Vec<CompressionJob> {
        let mut jobs = Vec::new();
        for (i, w) in weights.iter().enumerate() {
            for algo in ["mvq", "vq-a", "pvq"] {
                jobs.push(CompressionJob::new(
                    format!("w{i}-{algo}"),
                    w.clone(),
                    algo,
                    spec.clone(),
                ));
                // a duplicate of every job, exercising in-flight dedup
                jobs.push(CompressionJob::new(
                    format!("w{i}-{algo}-dup"),
                    w.clone(),
                    algo,
                    spec.clone(),
                ));
            }
        }
        jobs
    };
    let collect = |outcomes: &[mvq::serve::JobOutcome]| {
        let mut named: Vec<(String, Vec<u32>)> = outcomes
            .iter()
            .map(|o| (o.name.clone(), artifact_bits(&o.artifact().expect("decode"))))
            .collect();
        named.sort();
        named
    };

    let batched = BatchCompressionService::in_memory();
    let big = batched.submit(jobs()).expect("batch");
    assert_eq!(big.unique_jobs, 12);
    assert_eq!(big.deduped_jobs, 12);
    assert_eq!(big.cache_hits, 0);

    // shuffled order: reverse is a deterministic shuffle
    let shuffled_service = BatchCompressionService::in_memory();
    let mut reversed = jobs();
    reversed.reverse();
    let shuffled = shuffled_service.submit(reversed).expect("shuffled batch");
    assert_eq!(collect(&big.outcomes), collect(&shuffled.outcomes), "order changed results");
    assert_eq!(shuffled.unique_jobs, 12);
    assert_eq!(shuffled.deduped_jobs, 12);

    // serial: one batch per job — same artifacts, hit counts fully
    // determined by duplicate structure (every dup hits the cache)
    let serial_service = BatchCompressionService::in_memory();
    let mut serial_outcomes = Vec::new();
    let mut serial_hits = 0usize;
    for job in jobs() {
        let report = serial_service.submit(vec![job]).expect("serial submit");
        serial_hits += report.cache_hits;
        serial_outcomes.extend(report.outcomes);
    }
    assert_eq!(collect(&big.outcomes), collect(&serial_outcomes), "batching changed results");
    assert_eq!(serial_hits, 12, "every duplicate must be a cache hit when submitted serially");

    // resubmitting the whole set is all hits, counted once per unique key
    let resubmit = batched.submit(jobs()).expect("resubmit");
    assert_eq!(resubmit.cache_hits, 12);
    assert_eq!(resubmit.compressed, 0);
    assert_eq!(collect(&big.outcomes), collect(&resubmit.outcomes));
}

#[test]
fn disk_backed_service_survives_restart_bit_identically() {
    let dir = std::env::temp_dir().join(format!("mvq-conformance-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
    let w = test_weight();
    let request = || {
        CompressionRequest::builder("conv0", w.clone(), "mvq").spec(spec.clone()).build().unwrap()
    };

    let first = CompressionService::with_cache_dir(&dir).expect("cache dir");
    let cold = first.submit_one(request()).wait().expect("cold");
    assert!(!cold.from_cache);
    drop(first);

    // a new service over the same directory: the artifact must come back
    // from disk, bit-identical
    let second = CompressionService::with_cache_dir(&dir).expect("cache dir");
    assert_eq!(second.cache().disk_len(), 1, "restart scan must see the persisted blob");
    let warm = second.submit_one(request()).wait().expect("warm");
    assert!(warm.from_cache);
    assert_eq!(
        artifact_bits(&cold.artifact().expect("decode")),
        artifact_bits(&warm.artifact().expect("decode")),
        "disk round-trip changed the artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_model_compression_matches_serial_integration() {
    let run = |parallelism| {
        let mut rng = StdRng::seed_from_u64(21);
        let mut model = mvq::nn::models::tiny_cnn(4, 8, &mut rng);
        let cfg = MvqConfig::new(16, 16, 4, 16).unwrap();
        ModelCompressor::new(cfg)
            .with_parallelism(parallelism)
            .compress(&mut model, &mut rng)
            .unwrap()
            .storage()
    };
    assert_eq!(run(Parallelism::Serial), run(Parallelism::Rayon));
}
