//! Trait-conformance tests: every compressor in the pipeline registry must
//! honor the shared `Compressor` / `CompressedArtifact` contract on the
//! same seeded weight matrix — and the batch compression service must
//! serve cache hits bit-identical to fresh compressions, deterministically
//! across submission order and batching.

use mvq::core::pipeline::{by_name, registry, PipelineSpec, ALGORITHM_NAMES};
use mvq::core::{CompressedArtifact, KernelStrategy, ModelCompressor, MvqConfig, Parallelism};
use mvq::serve::{BatchCompressionService, CompressionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_weight() -> mvq::tensor::Tensor {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    mvq::tensor::kaiming_normal(vec![64, 32], 32, &mut rng)
}

#[test]
fn every_registered_compressor_satisfies_the_contract() {
    let w = test_weight();
    for comp in registry() {
        let name = comp.name();
        let mut rng = StdRng::seed_from_u64(7);
        let artifact = comp
            .compress_matrix(&w, &mut rng)
            .unwrap_or_else(|e| panic!("{name}: compression failed: {e}"));

        // reconstruction round-trips the shape
        let recon = artifact.reconstruct().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(recon.dims(), w.dims(), "{name}: reconstruct dims");
        assert_eq!(artifact.orig_dims(), w.dims(), "{name}: orig_dims");

        // it actually compresses
        let ratio = artifact.compression_ratio();
        assert!(ratio > 1.0, "{name}: ratio {ratio} not > 1");

        // storage breakdown is self-consistent
        let s = artifact.storage();
        assert_eq!(s.original_bits, w.numel() as u64 * 32, "{name}: original bits");
        assert!(s.compressed_bits() > 0, "{name}: zero compressed bits");
        assert_eq!(
            s.compressed_bits(),
            s.assignment_bits + s.mask_bits + s.codebook_bits,
            "{name}: breakdown does not sum"
        );
        let expected = s.original_bits as f64 / s.compressed_bits() as f64;
        assert!((ratio - expected).abs() < 1e-9, "{name}: ratio formula");

        // masked representations decode sparsely, dense ones keep a mask
        // bit count of zero
        if let Some(mask) = artifact.mask() {
            assert!(s.mask_bits > 0, "{name}: mask stored but unbilled");
            assert!(
                (recon.sparsity() - mask.sparsity()).abs() < 0.05,
                "{name}: sparsity {} vs mask {}",
                recon.sparsity(),
                mask.sparsity()
            );
        } else {
            assert_eq!(s.mask_bits, 0, "{name}: mask bits without a mask");
        }

        // every current algorithm records a compression-time SSE
        assert!(artifact.sse().is_some(), "{name}: missing SSE");

        // deterministic under a fixed seed
        let mut rng2 = StdRng::seed_from_u64(7);
        let again = comp.compress_matrix(&w, &mut rng2).expect("second run");
        assert_eq!(
            again.reconstruct().expect("reconstruct").data(),
            recon.data(),
            "{name}: nondeterministic under fixed seed"
        );
    }
}

#[test]
fn blocked_kernel_produces_identical_artifacts_to_naive() {
    // The registry-level guarantee behind KernelStrategy::Blocked being
    // the default: for every algorithm, switching the kernel from the
    // naive oracle to the blocked one changes nothing observable —
    // reconstruction bits, storage accounting, recorded SSE.
    let w = test_weight();
    let base = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    for name in ALGORITHM_NAMES {
        let run = |kernel: KernelStrategy| {
            let spec = base.clone().with_kernel(kernel);
            by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(17))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let naive = run(KernelStrategy::Naive);
        let blocked = run(KernelStrategy::Blocked);
        assert_eq!(
            naive.reconstruct().unwrap().data(),
            blocked.reconstruct().unwrap().data(),
            "{name}: blocked reconstruction diverges from naive"
        );
        assert_eq!(naive.storage(), blocked.storage(), "{name}: storage diverges");
        match (naive.sse(), blocked.sse()) {
            (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{name}: SSE diverges"),
            (a, b) => assert_eq!(a, b, "{name}: SSE presence diverges"),
        }
        assert!(
            (naive.compression_ratio() - blocked.compression_ratio()).abs() < f64::EPSILON,
            "{name}: ratio diverges"
        );
    }
}

#[test]
fn simd_kernel_matches_naive_for_every_algorithm() {
    // The reassociating-kernel registry contract: switching any algorithm
    // from the naive oracle to `simd` leaves assignments — and therefore
    // the reconstructed weights, bit for bit — identical; only the
    // recorded clustering SSE may move, and at most by the pinned ULP
    // bound. Runs in debug and `--release` via CI (including the
    // target-cpu=native leg, where target-feature-dependent codegen would
    // surface).
    let w = test_weight();
    let base = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    for name in ALGORITHM_NAMES {
        let run = |kernel: KernelStrategy| {
            let spec = base.clone().with_kernel(kernel);
            by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(17))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let naive = run(KernelStrategy::Naive);
        let simd = run(KernelStrategy::Simd);
        assert_eq!(
            naive.assignments().map(|a| a.indices().to_vec()),
            simd.assignments().map(|a| a.indices().to_vec()),
            "{name}: simd assignments diverge from naive"
        );
        assert_eq!(
            naive.reconstruct().unwrap().data(),
            simd.reconstruct().unwrap().data(),
            "{name}: simd reconstruction diverges from naive"
        );
        assert_eq!(naive.storage(), simd.storage(), "{name}: storage diverges");
        match (naive.sse(), simd.sse()) {
            (Some(a), Some(b)) => {
                let ulp = mvq::core::differential::ulp_distance(a, b);
                assert!(
                    ulp <= mvq::core::REASSOC_SSE_ULP_BOUND,
                    "{name}: SSE {a} vs {b} diverges by {ulp} ULPs"
                );
            }
            (a, b) => assert_eq!(a, b, "{name}: SSE presence diverges"),
        }
    }
}

#[test]
fn simd_and_minibatch_kernels_are_deterministic_for_every_algorithm() {
    // Per-seed determinism for the two non-default strategies: simd
    // (reassociated but fixed-order lane accumulation) and minibatch run
    // under a simd-aware dispatch — two runs with one seed must be
    // bit-identical.
    let w = test_weight();
    for kernel in [KernelStrategy::Simd, KernelStrategy::Minibatch] {
        let spec =
            PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() }.with_kernel(kernel);
        for name in ALGORITHM_NAMES {
            let run = || {
                by_name(name, &spec)
                    .expect("valid spec")
                    .compress_matrix(&w, &mut StdRng::seed_from_u64(29))
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            };
            let a = run();
            let b = run();
            assert_eq!(
                a.reconstruct().unwrap().data(),
                b.reconstruct().unwrap().data(),
                "{name}: {kernel:?} nondeterministic under a fixed seed"
            );
            assert_eq!(
                a.sse().map(f32::to_bits),
                b.sse().map(f32::to_bits),
                "{name}: {kernel:?} SSE nondeterministic under a fixed seed"
            );
        }
    }
}

#[test]
fn minibatch_kernel_is_deterministic_for_every_algorithm() {
    let w = test_weight();
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() }
        .with_kernel(KernelStrategy::Minibatch);
    for name in ALGORITHM_NAMES {
        let run = || {
            by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(23))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.reconstruct().unwrap().data(),
            b.reconstruct().unwrap().data(),
            "{name}: minibatch nondeterministic under a fixed seed"
        );
        assert!(a.compression_ratio() > 1.0, "{name}: minibatch artifact does not compress");
    }
}

#[test]
fn registry_names_are_unique_and_match() {
    let names: Vec<&str> = registry().iter().map(|c| c.name()).collect();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate registry names");
    for name in ALGORITHM_NAMES {
        assert!(by_name(name, &PipelineSpec::default()).is_ok(), "{name} missing from by_name");
    }
}

#[test]
fn model_level_dispatch_works_for_every_algorithm() {
    // A cheap spec so DKM/PQF stay fast on the tiny model.
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    for comp in mvq::core::pipeline::registry_with(&spec).expect("valid spec") {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = mvq::nn::models::tiny_cnn(4, 8, &mut rng);
        let artifacts = comp
            .compress_model(&mut model, &mut rng)
            .unwrap_or_else(|e| panic!("{}: {e}", comp.name()));
        assert_eq!(artifacts.algorithm, comp.name());
        assert!(!artifacts.layers.is_empty(), "{}: no layers", comp.name());
        assert!(artifacts.compression_ratio() > 1.0, "{}", comp.name());
    }
}

#[test]
fn trait_object_and_concrete_mvq_agree() {
    // dispatching "mvq" through the registry must equal calling the
    // concrete compressor with the same seed
    let w = test_weight();
    let spec = PipelineSpec::default();
    let via_registry =
        by_name("mvq", &spec).unwrap().compress_matrix(&w, &mut StdRng::seed_from_u64(9)).unwrap();
    let cfg = MvqConfig::new(spec.k, spec.d, spec.keep_n, spec.m)
        .unwrap()
        .with_grouping(spec.grouping)
        .with_codebook_bits(spec.codebook_bits);
    let concrete = mvq::core::MvqCompressor::new(cfg)
        .compress_matrix(&w, &mut StdRng::seed_from_u64(9))
        .unwrap();
    assert_eq!(via_registry.reconstruct().unwrap().data(), concrete.reconstruct().unwrap().data());
}

fn artifact_bits(a: &CompressedArtifact) -> Vec<u32> {
    a.reconstruct().expect("reconstruct").data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn cache_hit_is_bit_identical_to_fresh_compression_for_every_algorithm() {
    // The service contract: serving a repeated job from the cache must be
    // observably indistinguishable from compressing it again — the decode
    // of the stored blob reconstructs the exact bit pattern a fresh run
    // (same seed, direct through the registry) produces.
    let w = test_weight();
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let service = BatchCompressionService::in_memory();
    for name in ALGORITHM_NAMES {
        let job = || vec![CompressionJob::new(name, w.clone(), name, spec.clone()).with_seed(41)];
        let cold = service.submit(job()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!cold.outcomes[0].from_cache, "{name}: first submission must compress");
        let warm = service.submit(job()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(warm.outcomes[0].from_cache, "{name}: second submission must hit");
        let fresh = by_name(name, &spec)
            .expect("valid spec")
            .compress_matrix(&w, &mut StdRng::seed_from_u64(41))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (label, served) in
            [("cold", &cold.outcomes[0].artifact), ("warm", &warm.outcomes[0].artifact)]
        {
            assert_eq!(
                artifact_bits(served),
                artifact_bits(&fresh),
                "{name}: {label} serve diverges from a fresh compression"
            );
            assert_eq!(served.storage(), fresh.storage(), "{name}: {label} storage");
        }
    }
}

#[test]
fn service_is_deterministic_across_order_and_batching() {
    // The same job set — shuffled, and split one-job-per-batch (serial)
    // vs one big batch (parallel fan-out) — must produce bit-identical
    // artifacts per job name and the same dedupe/hit accounting.
    let spec = PipelineSpec { k: 8, swap_trials: 200, ..PipelineSpec::default() };
    let mut wrng = StdRng::seed_from_u64(0xBEEF);
    let weights: Vec<mvq::tensor::Tensor> =
        (0..4).map(|_| mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut wrng)).collect();
    let jobs = || -> Vec<CompressionJob> {
        let mut jobs = Vec::new();
        for (i, w) in weights.iter().enumerate() {
            for algo in ["mvq", "vq-a", "pvq"] {
                jobs.push(CompressionJob::new(
                    format!("w{i}-{algo}"),
                    w.clone(),
                    algo,
                    spec.clone(),
                ));
                // a duplicate of every job, exercising in-flight dedup
                jobs.push(CompressionJob::new(
                    format!("w{i}-{algo}-dup"),
                    w.clone(),
                    algo,
                    spec.clone(),
                ));
            }
        }
        jobs
    };
    let collect = |outcomes: &[mvq::serve::JobOutcome]| {
        let mut named: Vec<(String, Vec<u32>)> =
            outcomes.iter().map(|o| (o.name.clone(), artifact_bits(&o.artifact))).collect();
        named.sort();
        named
    };

    let batched = BatchCompressionService::in_memory();
    let big = batched.submit(jobs()).expect("batch");
    assert_eq!(big.unique_jobs, 12);
    assert_eq!(big.deduped_jobs, 12);
    assert_eq!(big.cache_hits, 0);

    // shuffled order: reverse is a deterministic shuffle
    let shuffled_service = BatchCompressionService::in_memory();
    let mut reversed = jobs();
    reversed.reverse();
    let shuffled = shuffled_service.submit(reversed).expect("shuffled batch");
    assert_eq!(collect(&big.outcomes), collect(&shuffled.outcomes), "order changed results");
    assert_eq!(shuffled.unique_jobs, 12);
    assert_eq!(shuffled.deduped_jobs, 12);

    // serial: one batch per job — same artifacts, hit counts fully
    // determined by duplicate structure (every dup hits the cache)
    let serial_service = BatchCompressionService::in_memory();
    let mut serial_outcomes = Vec::new();
    let mut serial_hits = 0usize;
    for job in jobs() {
        let report = serial_service.submit(vec![job]).expect("serial submit");
        serial_hits += report.cache_hits;
        serial_outcomes.extend(report.outcomes);
    }
    assert_eq!(collect(&big.outcomes), collect(&serial_outcomes), "batching changed results");
    assert_eq!(serial_hits, 12, "every duplicate must be a cache hit when submitted serially");

    // resubmitting the whole set is all hits, counted once per unique key
    let resubmit = batched.submit(jobs()).expect("resubmit");
    assert_eq!(resubmit.cache_hits, 12);
    assert_eq!(resubmit.compressed, 0);
    assert_eq!(collect(&big.outcomes), collect(&resubmit.outcomes));
}

#[test]
fn disk_backed_service_survives_restart_bit_identically() {
    let dir = std::env::temp_dir().join(format!("mvq-conformance-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
    let w = test_weight();
    let job = || vec![CompressionJob::new("conv0", w.clone(), "mvq", spec.clone())];

    let first = BatchCompressionService::with_cache_dir(&dir).expect("cache dir");
    let cold = first.submit(job()).expect("cold");
    assert_eq!(cold.compressed, 1);
    drop(first);

    // a new service over the same directory: the artifact must come back
    // from disk, bit-identical
    let second = BatchCompressionService::with_cache_dir(&dir).expect("cache dir");
    let warm = second.submit(job()).expect("warm");
    assert_eq!(warm.cache_hits, 1);
    assert_eq!(warm.compressed, 0);
    assert_eq!(
        artifact_bits(&cold.outcomes[0].artifact),
        artifact_bits(&warm.outcomes[0].artifact),
        "disk round-trip changed the artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_model_compression_matches_serial_integration() {
    let run = |parallelism| {
        let mut rng = StdRng::seed_from_u64(21);
        let mut model = mvq::nn::models::tiny_cnn(4, 8, &mut rng);
        let cfg = MvqConfig::new(16, 16, 4, 16).unwrap();
        ModelCompressor::new(cfg)
            .with_parallelism(parallelism)
            .compress(&mut model, &mut rng)
            .unwrap()
            .storage()
    };
    assert_eq!(run(Parallelism::Serial), run(Parallelism::Rayon));
}
