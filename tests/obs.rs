//! Observability integration tests (`mvq::obs` threaded through
//! serve/store/net): a warm cache hit over real TCP must come back as a
//! queryable job-lifecycle trace, in-flight dedup must account each
//! rider exactly once even when submissions race, and a job cancelled
//! while queued must leave a monotonic trace whose never-ran stages are
//! absent — not zero.

use std::time::{Duration, Instant};

use mvq::core::pipeline::PipelineSpec;
use mvq::net::{NetClient, NetError, NetRequest, NetServer, WireErrorKind, WireMetricValue};
use mvq::obs::{names as metric, Stage, TraceOutcome};
use mvq::serve::{CompressionRequest, CompressionService};
use mvq::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn weight(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
}

fn quick_spec() -> PipelineSpec {
    PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() }
}

/// A request that occupies a worker for north of a second — long enough
/// for a test to arrange queue state behind it (same shape as the
/// blocker in `tests/net.rs`).
fn blocker_request(seed: u64) -> CompressionRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = mvq::tensor::kaiming_normal(vec![1024, 64], 64, &mut rng);
    CompressionRequest::builder("blocker", w, "mvq")
        .spec(PipelineSpec { k: 256, swap_trials: 500_000, ..PipelineSpec::default() })
        .seed(1)
        .build()
        .expect("build blocker")
}

/// Spins until `cond` holds, panicking with `what` after 60 s.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::yield_now();
    }
}

#[test]
fn warm_hit_over_tcp_yields_a_queryable_trace_with_five_stages() {
    let service =
        CompressionService::builder().workers(1).queue_capacity(8).build().expect("build service");
    let server = NetServer::bind("127.0.0.1:0", service).expect("bind server");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let mut request = NetRequest::new("warm-probe", weight(60), "mvq");
    request.spec = quick_spec();
    request.seed = Some(3);
    let primed = client.submit(&request).expect("priming submit");
    assert!(!primed.from_cache);
    let warm = client.submit(&request).expect("warm submit");
    assert!(warm.from_cache, "the resubmission must hit the cache");

    // the same connection now asks for the observability snapshot
    let reply = client.stats(4).expect("stats probe");

    // traces are newest-first; the warm hit is the latest completed job
    let trace = reply.traces.first().expect("the warm hit must be in the trace ring");
    assert_eq!(trace.name, "warm-probe");
    assert_eq!(trace.outcome, TraceOutcome::Ok);
    assert!(!trace.deduped);
    assert!(
        trace.stages.len() >= 5,
        "a warm hit must carry at least 5 stage timestamps, got {:?}",
        trace.stages
    );
    assert!(trace.is_monotonic(), "stage timestamps must be monotonic: {:?}", trace.stages);
    for stage in
        [Stage::Submitted, Stage::Queued, Stage::Dequeued, Stage::CacheProbe, Stage::Replied]
    {
        assert!(trace.stage_us(stage).is_some(), "warm hit is missing {}", stage.name());
    }
    // a hit never runs the kernel or re-encodes; those stages must be
    // absent from the trace, not present as zeros
    for stage in [Stage::Kernel, Stage::Encode, Stage::Cached] {
        assert!(trace.stage_us(stage).is_none(), "warm hit must not reach {}", stage.name());
    }

    // the histograms the CLI renders must have real counts behind them
    let histogram_count = |name: &str| {
        let m = reply.metrics.iter().find(|m| m.name == name).unwrap_or_else(|| {
            panic!("metric {name} missing from the wire snapshot");
        });
        match m.value {
            WireMetricValue::Histogram(h) => h.count,
            _ => panic!("{name} is not a histogram on the wire"),
        }
    };
    assert!(histogram_count("serve.hit.latency_us") >= 1, "the warm hit must record hit latency");
    assert!(histogram_count("serve.queue.wait_us") >= 2, "both jobs must record queue wait");
}

#[test]
fn raced_dedup_riders_account_exactly_once() {
    const SUBMITTERS: usize = 8;
    let service =
        CompressionService::builder().workers(1).queue_capacity(16).build().expect("build service");
    let registry = std::sync::Arc::clone(service.registry());
    let misses = registry.counter(metric::STORE_CACHE_MISSES);

    // occupy the single worker so every racing submission lands while
    // the shared key is still in flight
    let blocker = service.submit_one(blocker_request(70));
    wait_until("worker takes the blocker and probes the cache", || {
        service.queued() == 0 && misses.get() >= 1
    });
    let misses_before = misses.get();

    // identical identity from every thread: exactly one may queue, the
    // rest must ride it
    let shared_weight = weight(71);
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|i| {
                let service = &service;
                let w = shared_weight.clone();
                scope.spawn(move || {
                    let request = CompressionRequest::builder(format!("racer-{i}"), w, "mvq")
                        .spec(quick_spec())
                        .seed(9)
                        .build()
                        .expect("build racer");
                    service.submit_one(request).wait().expect("racer outcome")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("racer thread")).collect()
    });
    assert!(blocker.wait().is_ok(), "the blocker is unaffected by the race behind it");

    let fresh = outcomes.iter().filter(|o| !o.from_cache && !o.deduped).count();
    let deduped = outcomes.iter().filter(|o| o.deduped).count();
    assert_eq!(fresh, 1, "exactly one racer may compress fresh");
    assert_eq!(deduped, SUBMITTERS - 1, "every other racer must ride the in-flight job");

    // exactly-once accounting in the registry: one cache miss for the
    // shared key, one dedup count per rider, no phantom submissions
    assert_eq!(misses.get(), misses_before + 1, "the shared key may probe the cache exactly once");
    assert_eq!(registry.counter(metric::STORE_CACHE_HITS).get(), 0);
    assert_eq!(registry.counter(metric::SERVE_JOBS_DEDUPED).get(), (SUBMITTERS - 1) as u64);
    assert_eq!(
        registry.counter(metric::SERVE_JOBS_SUBMITTED).get(),
        (SUBMITTERS + 1) as u64,
        "every racer plus the blocker counts as submitted"
    );
    assert_eq!(
        registry.counter(metric::SERVE_JOBS_COMPLETED).get(),
        2,
        "two jobs ran: the blocker and the one shared compression"
    );

    // the ring agrees: one primary trace with the full stage set,
    // SUBMITTERS-1 rider traces marked deduped
    let recent = registry.traces().recent(SUBMITTERS + 1);
    let riders = recent.iter().filter(|t| t.deduped).count();
    assert_eq!(riders, SUBMITTERS - 1, "each rider finishes its own deduped trace");
    let primary = recent
        .iter()
        .find(|t| !t.deduped && t.name.starts_with("racer-"))
        .expect("the primary racer's trace must be in the ring");
    assert!(primary.stage_us(Stage::Kernel).is_some(), "the primary ran the kernel");
    assert!(primary.is_monotonic(), "primary stages must be monotonic: {:?}", primary.stages);
}

#[test]
fn deadline_cancelled_trace_is_monotonic_with_never_ran_stages_absent() {
    let service =
        CompressionService::builder().workers(1).queue_capacity(8).build().expect("build service");
    let server = NetServer::bind("127.0.0.1:0", service).expect("bind server");
    let registry = std::sync::Arc::clone(server.registry());

    let blocker = server.service().submit_one(blocker_request(80));
    wait_until("worker takes the blocker", || server.service().queued() == 0);

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let mut request = NetRequest::new("expired", weight(81), "mvq");
    request.spec = quick_spec();
    request.seed = Some(4);
    // a 1 ms queue budget behind a multi-second blocker: certain expiry
    request.deadline = Some(Duration::from_millis(1));
    match client.submit(&request) {
        Err(NetError::Remote { kind: WireErrorKind::CancelledDeadline, .. }) => {}
        other => panic!("expected a CancelledDeadline response, got {other:?}"),
    }

    // the response only flushes after the worker peeled the dead waiter
    // and finished its trace, so the ring already holds it
    let recent = registry.traces().recent(4);
    let trace = recent
        .iter()
        .find(|t| t.name == "expired")
        .expect("the expired job's trace must be in the ring");
    assert_eq!(trace.outcome, TraceOutcome::CancelledDeadline);
    assert!(trace.is_monotonic(), "stages must be monotonic: {:?}", trace.stages);
    for stage in [Stage::Submitted, Stage::Queued, Stage::Replied] {
        assert!(trace.stage_us(stage).is_some(), "cancelled job must still stamp {}", stage.name());
    }
    // the job never reached a worker: execution stages are absent from
    // the snapshot entirely, not recorded as zero offsets
    for stage in [Stage::Dequeued, Stage::CacheProbe, Stage::Kernel, Stage::Encode, Stage::Cached] {
        assert!(
            trace.stage_us(stage).is_none(),
            "a queue-expired job must never reach {}",
            stage.name()
        );
    }
    assert_eq!(registry.counter(metric::SERVE_JOBS_CANCELLED).get(), 1);
    assert!(blocker.wait().is_ok(), "the blocker is unaffected by the expiry behind it");
}
