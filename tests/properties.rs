//! Property-based tests (proptest) over the core data structures and
//! invariants of the MVQ pipeline — including the differential oracle
//! harness (`mvq::core::differential`) for the distance kernels. Two
//! contract tiers against [`masked_assign_naive`]:
//!
//! * order-preserving kernels (`blocked`): exact assignments **and** 0-ULP
//!   SSE, for random shapes, masks and seeds;
//! * reassociating kernels (`simd`): exact assignments, ties broken to the
//!   lowest codeword index, and SSE within the pinned
//!   [`mvq::core::REASSOC_SSE_ULP_BOUND`] ULPs.

use mvq::core::differential::{
    compare_dense, compare_masked, compare_masked_pair, DiffConfig, DiffReport,
};
use mvq::core::{
    dense_assign_naive, dense_assign_with, masked_assign_naive, masked_assign_with, masked_kmeans,
    masked_kmeans_minibatch, masked_sse, masked_sse_with, prune_matrix_nm, GroupingStrategy,
    KernelStrategy, KmeansConfig, MaskLut, MvqCompressor, MvqConfig, REASSOC_SSE_ULP_BOUND,
};
use mvq::tensor::{dequantize_symmetric, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grouping and ungrouping are inverse bijections for every strategy.
    #[test]
    fn grouping_round_trips(
        data in proptest::collection::vec(-5.0f32..5.0, 8 * 4 * 9),
        strat in prop_oneof![
            Just(GroupingStrategy::KernelWise),
            Just(GroupingStrategy::OutputChannelWise),
            Just(GroupingStrategy::InputChannelWise),
        ],
    ) {
        let w = Tensor::from_vec(vec![8, 4, 3, 3], data).expect("sized");
        let d = match strat {
            GroupingStrategy::KernelWise => 9,
            _ => 4,
        };
        let grouped = strat.group(&w, d).expect("groupable");
        let back = strat.ungroup(&grouped, w.dims(), d).expect("ungroupable");
        prop_assert_eq!(back.data(), w.data());
    }

    /// N:M pruning keeps exactly N of every M, keeps the largest
    /// magnitudes, and never changes surviving values.
    #[test]
    fn pruning_invariants(w in finite_matrix(16, 16)) {
        let (pruned, mask) = prune_matrix_nm(&w, 4, 16).expect("valid dims");
        for j in 0..16 {
            let kept: Vec<usize> =
                (0..16).filter(|&t| mask.row(j)[t]).collect();
            prop_assert_eq!(kept.len(), 4);
            let min_kept = kept
                .iter()
                .map(|&t| w.at(&[j, t]).unwrap().abs())
                .fold(f32::INFINITY, f32::min);
            for t in 0..16 {
                if mask.row(j)[t] {
                    prop_assert_eq!(pruned.at(&[j, t]).unwrap(), w.at(&[j, t]).unwrap());
                } else {
                    prop_assert_eq!(pruned.at(&[j, t]).unwrap(), 0.0);
                    prop_assert!(w.at(&[j, t]).unwrap().abs() <= min_kept + 1e-6);
                }
            }
        }
    }

    /// Mask-LUT encode/decode round-trips over random masks.
    #[test]
    fn mask_lut_round_trip(seed in 0u64..1000) {
        let lut = MaskLut::new(2, 4).expect("valid");
        let idx = (seed % lut.len() as u64) as u32;
        let mask = lut.decode(idx).expect("in range").to_vec();
        prop_assert_eq!(lut.encode(&mask).expect("valid mask"), idx);
    }

    /// Symmetric quantization error is bounded by half a step everywhere
    /// inside the representable range.
    #[test]
    fn quantization_error_bound(
        data in proptest::collection::vec(-1.0f32..1.0, 32),
        scale in 0.01f32..0.5,
    ) {
        let t = Tensor::from_vec(vec![32], data).expect("sized");
        let q = dequantize_symmetric(&t, scale, 8).expect("valid");
        let qmax = 127.0 * scale;
        for (&orig, &deq) in t.data().iter().zip(q.data()) {
            if orig.abs() < qmax {
                prop_assert!((orig - deq).abs() <= scale / 2.0 + 1e-6);
            }
        }
    }

    /// The kernel a clustering run dispatches to agrees with the naive
    /// reference on the SSE it reports.
    #[test]
    fn masked_assignment_equivalence(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq::tensor::uniform(vec![48, 8], -1.0, 1.0, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, 2, 4).expect("valid");
        let res = masked_kmeans(&pruned, &mask, &KmeansConfig::new(6), &mut rng)
            .expect("clusterable");
        let naive = masked_assign_naive(&pruned, &mask, res.codebook.centers());
        // both must produce assignments with identical masked SSE (ties
        // may be broken differently)
        let naive_sse = {
            let a = mvq::core::Assignments::new(naive, res.codebook.k()).expect("in range");
            masked_sse(&pruned, &mask, &res.codebook, &a).expect("consistent")
        };
        prop_assert!((naive_sse - res.sse).abs() < 1e-3,
            "naive {} vs factored {}", naive_sse, res.sse);
    }

    /// Reconstruction always has exactly the mask's sparsity pattern.
    #[test]
    fn reconstruction_respects_mask(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq::tensor::uniform(vec![32, 16], -1.0, 1.0, &mut rng);
        let cfg = MvqConfig::new(8, 16, 4, 16).expect("valid");
        let c = MvqCompressor::new(cfg).compress_matrix(&w, &mut rng).expect("compressible");
        let g = c.reconstruct_grouped().expect("reconstructible");
        for j in 0..32 {
            for t in 0..16 {
                if !c.mask().row(j)[t] {
                    prop_assert_eq!(g.at(&[j, t]).unwrap(), 0.0);
                }
            }
        }
    }

    /// Compression ratio formula consistency: ratio == original/compressed.
    #[test]
    fn storage_breakdown_consistency(k in 2usize..64, ng_mult in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let ng = ng_mult * 32;
        let w = mvq::tensor::uniform(vec![ng, 16], -1.0, 1.0, &mut rng);
        let cfg = MvqConfig::new(k, 16, 4, 16).expect("valid");
        let c = MvqCompressor::new(cfg).compress_matrix(&w, &mut rng).expect("compressible");
        let s = c.storage();
        let expected = s.original_bits as f64
            / (s.assignment_bits + s.mask_bits + s.codebook_bits) as f64;
        prop_assert!((c.compression_ratio() - expected).abs() < 1e-9);
        prop_assert_eq!(s.original_bits, (ng * 16 * 32) as u64);
    }
}

proptest! {
    // The acceptance bar for new kernels: ≥256 randomized cases of exact
    // equivalence against the naive oracle. Run in both debug and
    // --release (see CI): release builds are where illegal reassociation
    // or fast-math shortcuts would surface.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Blocked masked assignment is bit-identical to `masked_assign_naive`
    /// and the blocked masked SSE matches the naive SSE to 0 ULP, for
    /// random shapes, N:M patterns, masks and seeds. Data is arbitrary
    /// (masked lanes need not hold zeros) — the kernels must agree
    /// regardless.
    #[test]
    fn blocked_masked_kernels_are_bit_identical_to_naive(
        seed in 0u64..1_000_000,
        ng in 1usize..96,
        k in 1usize..40,
        shape in prop_oneof![
            Just((1usize, 2usize, 4usize)),
            Just((2, 4, 4)),
            Just((2, 4, 8)),
            Just((4, 8, 8)),
            Just((4, 16, 16)),
        ],
    ) {
        let (n, m, d) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let data = mvq::tensor::uniform(vec![ng, d], -2.0, 2.0, &mut rng);
        let mask_src = mvq::tensor::uniform(vec![ng, d], -1.0, 1.0, &mut rng);
        let (_, mask) = prune_matrix_nm(&mask_src, n, m).expect("valid N:M");
        let centers = mvq::tensor::uniform(vec![k, d], -2.0, 2.0, &mut rng);

        let naive = masked_assign_naive(&data, &mask, &centers);
        let blocked = masked_assign_with(KernelStrategy::Blocked, &data, &mask, &centers)
            .expect("validated inputs");
        prop_assert_eq!(&naive, &blocked, "assignment divergence (ng={} k={} d={})", ng, k, d);

        let sse_naive = masked_sse_with(KernelStrategy::Naive, &data, &mask, &centers, &naive)
            .expect("validated inputs");
        let sse_blocked = masked_sse_with(KernelStrategy::Blocked, &data, &mask, &centers, &blocked)
            .expect("validated inputs");
        prop_assert_eq!(
            sse_naive.to_bits(), sse_blocked.to_bits(),
            "SSE differs by >0 ULP: naive {} vs blocked {}", sse_naive, sse_blocked
        );
    }

    /// The dense blocked kernel is bit-identical to its naive oracle.
    #[test]
    fn blocked_dense_kernel_is_bit_identical_to_naive(
        seed in 0u64..1_000_000,
        ng in 1usize..96,
        k in 1usize..40,
        d in prop_oneof![Just(2usize), Just(5), Just(8), Just(16)],
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = mvq::tensor::uniform(vec![ng, d], -2.0, 2.0, &mut rng);
        let centers = mvq::tensor::uniform(vec![k, d], -2.0, 2.0, &mut rng);
        let naive = dense_assign_naive(&data, &centers);
        let blocked = dense_assign_with(KernelStrategy::Blocked, &data, &centers)
            .expect("validated inputs");
        prop_assert_eq!(naive, blocked);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full masked k-means runs under `simd` produce exactly the oracle's
    /// assignments and codebook (assignment equality per iteration makes
    /// the centroid updates bit-identical), with the reported SSE inside
    /// the pinned ULP bound.
    #[test]
    fn simd_masked_kmeans_matches_naive_end_to_end(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq::tensor::uniform(vec![128, 8], -1.0, 1.0, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, 2, 4).expect("valid");
        let run = |kernel| {
            masked_kmeans(&pruned, &mask, &KmeansConfig::new(9).with_kernel(kernel),
                &mut StdRng::seed_from_u64(seed ^ 0x5A))
                .expect("clusterable")
        };
        let naive = run(KernelStrategy::Naive);
        let simd = run(KernelStrategy::Simd);
        prop_assert_eq!(naive.assignments.indices(), simd.assignments.indices());
        prop_assert_eq!(naive.codebook.centers().data(), simd.codebook.centers().data());
        let ulp = mvq::core::differential::ulp_distance(naive.sse, simd.sse);
        prop_assert!(ulp <= REASSOC_SSE_ULP_BOUND,
            "sse {} vs {}: {} ULPs", naive.sse, simd.sse, ulp);
    }

    /// Minibatch masked k-means is deterministic: the same seed replays
    /// the same batches and yields bit-identical results.
    #[test]
    fn minibatch_masked_kmeans_is_deterministic(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq::tensor::uniform(vec![160, 8], -1.0, 1.0, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, 2, 4).expect("valid");
        let cfg = KmeansConfig::new(8);
        let run = || {
            masked_kmeans_minibatch(&pruned, &mask, &cfg, 48, &mut StdRng::seed_from_u64(seed ^ 0xA5))
                .expect("clusterable")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.assignments.indices(), b.assignments.indices());
        prop_assert_eq!(a.codebook.centers().data(), b.codebook.centers().data());
        prop_assert_eq!(a.sse.to_bits(), b.sse.to_bits());
    }
}

/// The registry acceptance bar, driven through the reusable differential
/// harness: ≥ 256 randomized cases (shapes straddling the SIMD chunk and
/// codeword-block widths, masks from independent matrices, duplicate-
/// codeword ties injected every 8th case).
fn acceptance_config() -> DiffConfig {
    let cfg = DiffConfig::default();
    assert!(cfg.cases >= 256, "the acceptance bar is at least 256 cases");
    cfg
}

fn assert_assignments_identical(report: &DiffReport, label: &str) {
    assert_eq!(report.assignment_mismatches, 0, "{label}: {:?}", report.first_divergence);
    assert_eq!(report.tie_break_violations, 0, "{label}: {:?}", report.first_divergence);
    assert!(report.tie_rows > 0, "{label}: tie injection never produced a tied row");
    assert!(report.assignments_identical(), "{label}: {report:?}");
}

/// `simd` vs the naive oracle: exact assignment equality over the full
/// acceptance run, lowest-index tie-breaking on constructed ties, and SSE
/// within the pinned ULP bound — the reassociating-kernel contract.
#[test]
fn simd_masked_kernel_passes_the_differential_acceptance_bar() {
    let report = compare_masked(KernelStrategy::Simd, &acceptance_config()).unwrap();
    assert_eq!(report.cases, acceptance_config().cases);
    assert_assignments_identical(&report, "simd masked");
    assert!(
        report.max_sse_ulp <= REASSOC_SSE_ULP_BOUND,
        "simd SSE diverged by {} ULPs (pinned bound {REASSOC_SSE_ULP_BOUND})",
        report.max_sse_ulp
    );
}

/// The dense simd kernel under the same bar.
#[test]
fn simd_dense_kernel_passes_the_differential_acceptance_bar() {
    let report = compare_dense(KernelStrategy::Simd, &acceptance_config()).unwrap();
    assert_assignments_identical(&report, "simd dense");
}

/// The blocked kernel re-proven through the same harness at the stricter
/// order-preserving tier: 0-ULP SSE on top of exact assignments.
#[test]
fn blocked_kernel_is_exact_under_the_differential_harness() {
    let report = compare_masked(KernelStrategy::Blocked, &acceptance_config()).unwrap();
    assert_assignments_identical(&report, "blocked masked");
    assert_eq!(report.max_sse_ulp, 0, "blocked SSE must be bit-identical to the oracle");
    let dense = compare_dense(KernelStrategy::Blocked, &acceptance_config()).unwrap();
    assert_assignments_identical(&dense, "blocked dense");
}

/// Blocked vs simd directly (not through the oracle): assignments must
/// still be exactly equal, and their SSEs differ by at most the bound —
/// the harness works on arbitrary kernel pairs, not just oracle pairs.
#[test]
fn blocked_and_simd_agree_pairwise() {
    let report =
        compare_masked_pair(KernelStrategy::Blocked, KernelStrategy::Simd, &acceptance_config())
            .unwrap();
    assert_assignments_identical(&report, "blocked vs simd");
    assert!(report.max_sse_ulp <= REASSOC_SSE_ULP_BOUND, "{report:?}");
}

/// Non-proptest cross-check: masked k-means never yields higher masked SSE
/// than plain k-means on the same pruned data (averaged over seeds — the
/// defining advantage from the paper's Table 3).
#[test]
fn masked_kmeans_dominates_plain_on_average() {
    let mut wins = 0;
    let trials = 10;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq::tensor::kaiming_normal(vec![256, 16], 16, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, 4, 16).unwrap();
        let cfg = KmeansConfig::new(16);
        let masked =
            masked_kmeans(&pruned, &mask, &cfg, &mut StdRng::seed_from_u64(seed + 100)).unwrap();
        let plain =
            mvq::core::kmeans(&pruned, &cfg, None, &mut StdRng::seed_from_u64(seed + 100)).unwrap();
        let plain_masked = masked_sse(&pruned, &mask, &plain.codebook, &plain.assignments).unwrap();
        if masked.sse < plain_masked {
            wins += 1;
        }
    }
    assert!(wins >= 9, "masked k-means won only {wins}/{trials} trials");
}
