//! Round-trip property tests for the artifact codec (`mvq_core::store`):
//! for every registry algorithm over randomized shapes, specs and seeds,
//! `from_bytes(to_bytes(a))` must reconstruct **0-ULP identical** to `a`,
//! and the storage accounting must be preserved exactly.
//!
//! Run in debug *and* `--release` (CI does both): layout and
//! reassociation bugs are precisely the class that only shows under
//! optimizations.

use mvq::core::pipeline::{by_name, PipelineSpec, ALGORITHM_NAMES};
use mvq::core::store::{Persist, FORMAT_VERSION, MAGIC};
use mvq::core::{CompressedArtifact, GroupingStrategy, LayerArtifact, ModelArtifacts};
use mvq::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// 0-ULP equality of artifact observables: reconstruction bit patterns,
/// storage breakdown, compression ratio, SSE bit patterns, dims.
fn assert_equivalent(
    a: &CompressedArtifact,
    b: &CompressedArtifact,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let ra = a.reconstruct().expect("reconstruct original");
    let rb = b.reconstruct().expect("reconstruct decoded");
    prop_assert_eq!(ra.dims(), rb.dims(), "{}: dims", ctx);
    prop_assert_eq!(bits(&ra), bits(&rb), "{}: reconstruction bits", ctx);
    prop_assert_eq!(a.storage(), b.storage(), "{}: storage", ctx);
    prop_assert_eq!(
        a.compression_ratio().to_bits(),
        b.compression_ratio().to_bits(),
        "{}: ratio",
        ctx
    );
    prop_assert_eq!(a.orig_dims(), b.orig_dims(), "{}: orig_dims", ctx);
    prop_assert_eq!(a.sse().map(f32::to_bits), b.sse().map(f32::to_bits), "{}: sse", ctx);
    Ok(())
}

/// Builds a randomized (weight, spec) pair valid for every registry
/// algorithm: d is a multiple of m, rows a multiple of d (output-channel-
/// wise grouping), and k small enough to stay clusterable.
fn weight_and_spec(
    seed: u64,
    row_blocks: usize,
    nmd: (usize, usize, usize),
) -> (Tensor, PipelineSpec) {
    let (keep_n, m, d) = nmd;
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = d * (row_blocks + 1);
    let cols = 4;
    let w = mvq::tensor::kaiming_normal(vec![rows, cols], cols, &mut rng);
    let spec = PipelineSpec { k: 4, d, keep_n, m, swap_trials: 50, ..PipelineSpec::default() };
    (w, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registry algorithm's artifact survives bytes with 0-ULP
    /// identical reconstruction and exact storage accounting.
    #[test]
    fn every_algorithm_round_trips_through_bytes(
        seed in 0u64..1_000_000,
        row_blocks in 1usize..4,
        nmd in prop_oneof![
            Just((2usize, 4usize, 8usize)),
            Just((4, 16, 16)),
            Just((2, 8, 16)),
        ],
    ) {
        let (w, spec) = weight_and_spec(seed, row_blocks, nmd);
        for name in ALGORITHM_NAMES {
            let comp = by_name(name, &spec).expect("valid spec");
            let artifact = comp
                .compress_matrix(&w, &mut StdRng::seed_from_u64(seed))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let encoded = artifact.to_bytes().unwrap_or_else(|e| panic!("{name}: encode: {e}"));
            let decoded = CompressedArtifact::from_bytes(&encoded)
                .unwrap_or_else(|e| panic!("{name}: decode: {e}"));
            assert_equivalent(&artifact, &decoded, name)?;
            // encoding is deterministic: re-encoding the decoded artifact
            // reproduces the exact bytes
            prop_assert_eq!(
                encoded,
                decoded.to_bytes().expect("re-encode"),
                "{}: re-encode drifted",
                name
            );
        }
    }

    /// Layer and model wrappers round-trip, including skipped-conv lists
    /// and the algorithm name.
    #[test]
    fn model_artifacts_round_trip(algo_idx in 0usize..ALGORITHM_NAMES.len(), seed in 0u64..10_000) {
        let name = ALGORITHM_NAMES[algo_idx];
        let spec = PipelineSpec { k: 8, swap_trials: 50, ..PipelineSpec::default() };
        let comp = by_name(name, &spec).expect("valid spec");
        let mut rng = StdRng::seed_from_u64(seed);
        let model = mvq::nn::models::tiny_cnn(4, 8, &mut rng);
        let arts = comp
            .compress_model_artifacts(&model, &mut rng)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let decoded =
            ModelArtifacts::from_bytes(&arts.to_bytes().unwrap_or_else(|e| panic!("{name}: {e}")))
                .unwrap_or_else(|e| panic!("{name}: decode: {e}"));
        prop_assert_eq!(decoded.algorithm, arts.algorithm);
        prop_assert_eq!(&decoded.skipped, &arts.skipped);
        prop_assert_eq!(decoded.layers.len(), arts.layers.len());
        prop_assert_eq!(decoded.storage(), arts.storage());
        for (a, b) in arts.layers.iter().zip(&decoded.layers) {
            prop_assert_eq!(a.conv_index, b.conv_index);
            assert_equivalent(&a.artifact, &b.artifact, name)?;
        }
        // a single layer round-trips standalone too
        let layer = &arts.layers[0];
        let layer_decoded =
            LayerArtifact::from_bytes(&layer.to_bytes().expect("layer encode"))
                .expect("layer decode");
        prop_assert_eq!(layer_decoded.conv_index, layer.conv_index);
        assert_equivalent(&layer.artifact, &layer_decoded.artifact, name)?;
    }

    /// Grouping strategies and unquantized codebooks are preserved (the
    /// non-default corners of the per-variant field layout).
    #[test]
    fn non_default_spec_corners_round_trip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = mvq::tensor::kaiming_normal(vec![16, 4, 3, 3], 36, &mut rng);
        let spec = PipelineSpec {
            k: 4,
            d: 9,
            keep_n: 3,
            m: 9,
            grouping: GroupingStrategy::KernelWise,
            codebook_bits: None, // fp32 codebook: Option-tag path
            swap_trials: 50,
            ..PipelineSpec::default()
        };
        for name in ["mvq", "vq-c", "pqf", "bgd"] {
            let artifact = by_name(name, &spec)
                .expect("valid spec")
                .compress_matrix(&w, &mut StdRng::seed_from_u64(seed))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let decoded =
                CompressedArtifact::from_bytes(&artifact.to_bytes().expect("encode"))
                    .expect("decode");
            assert_equivalent(&artifact, &decoded, name)?;
            prop_assert_eq!(
                decoded.codebook().expect("has codebook").bits(),
                None,
                "{}: fp32 codebook must stay unquantized",
                name
            );
        }
    }
}

/// Golden-blob regression pin for format v1: a hand-assembled scalar
/// artifact whose exact bytes are pinned. If the layout ever changes this
/// fails, which is the signal to bump `FORMAT_VERSION`, re-pin against
/// the new version, and keep this old-version decode path working.
#[test]
fn format_v1_golden_blob_decodes() {
    let quantized = Tensor::from_vec(vec![2, 2], vec![0.5, -0.5, 1.0, 0.0]).unwrap();
    let artifact = CompressedArtifact::Scalar(mvq::core::pipeline::ScalarQuantized {
        result: mvq::core::baselines::pvq::PvqResult { quantized, scale: 0.5, bits: 2, sse: 0.25 },
    });
    let encoded = artifact.to_bytes().expect("encode");
    // header: magic + version + kind(artifact) + payload_len + checksum
    assert_eq!(&encoded[0..4], &MAGIC);
    assert_eq!(u16::from_le_bytes(encoded[4..6].try_into().unwrap()), FORMAT_VERSION);
    let golden: Vec<u8> = vec![
        // magic "MVQA", version 1, kind 0
        0x4d, 0x56, 0x51, 0x41, 0x01, 0x00, 0x00, //
        // payload length 46
        0x2e, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // FNV-1a payload checksum
        0x18, 0x7b, 0x29, 0x91, 0x01, 0x87, 0xf8, 0x2e, //
        // payload: variant tag 3 (scalar)
        0x03, //
        // tensor dims: rank 2, [2, 2]
        0x02, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // f32 bit patterns: 0.5, -0.5, 1.0, 0.0
        0x00, 0x00, 0x00, 0x3f, 0x00, 0x00, 0x00, 0xbf, //
        0x00, 0x00, 0x80, 0x3f, 0x00, 0x00, 0x00, 0x00, //
        // scale 0.5, bits 2, sse 0.25
        0x00, 0x00, 0x00, 0x3f, 0x02, 0x00, 0x00, 0x00, //
        0x00, 0x00, 0x80, 0x3e,
    ];
    assert_eq!(
        encoded, golden,
        "format v1 layout drifted — bump FORMAT_VERSION and keep this blob decodable"
    );
    let decoded = CompressedArtifact::from_bytes(&golden).expect("golden v1 blob must decode");
    assert_eq!(bits(&decoded.reconstruct().unwrap()), bits(&artifact.reconstruct().unwrap()));
}
