//! Integration tests: consistency between the compression algorithm
//! (mvq-core) and the accelerator model (mvq-accel).

use mvq::accel::{
    lzc_encode_mask, simulate_network, weight_load_bits, workloads, HwConfig, HwSetting, SparseTile,
};
use mvq::core::{prune_matrix_nm, MaskLut, MvqCompressor, MvqConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn weight_load_bits_match_algorithm_storage() {
    // The loader's per-layer traffic must equal the algorithm's
    // assignments+mask storage (Eq. 7's b_a + b_m) for the same block.
    let cfg = HwConfig::new(HwSetting::EwsCms, 64).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let elems = 512usize * 16;
    let w = mvq::tensor::kaiming_normal(vec![512, 16], 16, &mut rng);
    let algo_cfg = MvqConfig::new(cfg.k, cfg.d, cfg.keep_n, cfg.m).unwrap();
    let compressed = MvqCompressor::new(algo_cfg).compress_matrix(&w, &mut rng).unwrap();
    let storage = compressed.storage();
    let hw_bits = weight_load_bits(&cfg, elems as u64, false);
    assert_eq!(
        hw_bits as u64,
        storage.assignment_bits + storage.mask_bits,
        "hardware loader bits must equal Eq. 7's b_a + b_m"
    );
}

#[test]
fn sparse_tile_computes_real_compressed_weights() {
    // Drive the behavioral sparse tile with an actual MVQ-compressed
    // subvector and verify it against the dense decode.
    let mut rng = StdRng::seed_from_u64(1);
    let w = mvq::tensor::kaiming_normal(vec![64, 16], 16, &mut rng);
    let cfg = MvqConfig::new(16, 16, 4, 16).unwrap();
    let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut rng).unwrap();
    let decoded = compressed.reconstruct_grouped().unwrap();
    for j in 0..8 {
        let mask: Vec<bool> = compressed.mask().row(j).to_vec();
        let kept: Vec<f64> =
            decoded.row(j).iter().zip(&mask).filter(|(_, &m)| m).map(|(&v, _)| v as f64).collect();
        let tile = SparseTile::program(16, &mask, &kept).unwrap();
        assert_eq!(tile.q(), 4);
        for act in [1.0f64, -0.5, 2.25] {
            let sparse = tile.cycle(act);
            for (t, &m) in mask.iter().enumerate() {
                let expected = if m { decoded.row(j)[t] as f64 * act } else { 0.0 };
                assert!((sparse[t] - expected).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn lzc_encoder_agrees_with_mask_lut_round_trip() {
    // The LUT decode (weight loader) and LZC encode (sparse tile) must
    // compose: decode an index, LZC-encode it, and the positions must
    // address exactly the kept lanes.
    let lut = MaskLut::new(4, 16).unwrap();
    for idx in (0..lut.len() as u32).step_by(97) {
        let mask = lut.decode(idx).unwrap();
        let positions = lzc_encode_mask(mask);
        assert_eq!(positions.len(), 4);
        for &p in &positions {
            assert!(mask[p], "LZC position {p} not kept in mask {mask:?}");
        }
    }
}

#[test]
fn pruned_matrix_matches_hardware_q() {
    // Q = N/M × d kept lanes per subvector — the PE count of the sparse
    // tile — must hold on real pruned data.
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq::tensor::kaiming_normal(vec![128, 16], 16, &mut rng);
    let (_, mask) = prune_matrix_nm(&w, 4, 16).unwrap();
    let cfg = HwConfig::new(HwSetting::EwsCms, 32).unwrap();
    assert_eq!(mask.kept_per_subvector(), cfg.physical_macs() * 16 / (32 * 32));
}

#[test]
fn simulator_conserves_macs_across_settings() {
    // Every setting performs the same dense-equivalent work.
    let net = workloads::resnet50();
    let expected = net.total_macs() as f64;
    for setting in HwSetting::ALL {
        let r = simulate_network(&HwConfig::new(setting, 32).unwrap(), &net);
        assert!(
            (r.effective_macs - expected).abs() < 1.0,
            "{setting}: {} vs {expected}",
            r.effective_macs
        );
    }
}

#[test]
fn compression_never_slows_inference() {
    for net in workloads::all_networks() {
        for size in [16usize, 32, 64] {
            let base = simulate_network(&HwConfig::new(HwSetting::Ews, size).unwrap(), &net);
            let cms = simulate_network(&HwConfig::new(HwSetting::EwsCms, size).unwrap(), &net);
            assert!(
                cms.cycles <= base.cycles * 1.001,
                "{} at {size}: CMS {} > base {}",
                net.name,
                cms.cycles,
                base.cycles
            );
        }
    }
}
