//! Wire failure-injection tests for the TCP serving front (`mvq::net`):
//! protocol garbage must close one connection and never the server,
//! dead clients' queued work must be discarded before it occupies a
//! worker, queue deadlines must be honored, and a graceful drain must
//! flush every accepted in-flight response.
//!
//! The tests spin on [`NetServer::stats`] counters instead of sleeping,
//! with a generous wall-clock ceiling as the failure signal.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mvq::core::pipeline::PipelineSpec;
use mvq::core::store::CacheKey;
use mvq::net::{NetClient, NetError, NetRequest, NetServer, WireErrorKind, WireRequest};
use mvq::serve::{CacheMode, CompressionService, Priority};
use mvq::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn weight(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng)
}

fn quick_spec() -> PipelineSpec {
    PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() }
}

/// A request that keeps the single worker busy for north of a second
/// (measured ~1.5 s on the CI box): long enough for a test to arrange
/// queue state behind it, with margin over the µs-scale race windows
/// even on a much faster machine. The tiny 32×16 requests converge in
/// well under a millisecond, so `swap_trials` alone cannot block — the
/// blocker needs a genuinely large codebook problem.
fn blocker_request(seed: u64) -> mvq::serve::CompressionRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = mvq::tensor::kaiming_normal(vec![1024, 64], 64, &mut rng);
    mvq::serve::CompressionRequest::builder("blocker", w, "mvq")
        .spec(PipelineSpec { k: 256, swap_trials: 500_000, ..PipelineSpec::default() })
        .seed(1)
        .build()
        .expect("build blocker")
}

fn one_worker_server() -> NetServer {
    let service =
        CompressionService::builder().workers(1).queue_capacity(8).build().expect("build service");
    NetServer::bind("127.0.0.1:0", service).expect("bind server")
}

/// Spins until `cond` holds, panicking with `what` after 60 s.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::yield_now();
    }
}

/// Writes one length-prefixed message the way the protocol does.
fn write_raw(stream: &mut TcpStream, frame: &[u8]) {
    let len = u32::try_from(frame.len()).expect("test frame fits u32");
    stream.write_all(&len.to_le_bytes()).expect("write length prefix");
    stream.write_all(frame).expect("write frame");
}

/// A well-formed `WireRequest` frame to corrupt.
fn valid_request_frame(id: u64) -> Vec<u8> {
    WireRequest {
        id,
        name: format!("garbage-donor-{id}"),
        algo: "mvq".into(),
        spec: quick_spec(),
        seed: Some(1),
        priority: Priority::default(),
        cache_mode: CacheMode::default(),
        deadline_ms: None,
        weight: weight(id),
    }
    .encode()
    .expect("encode request")
}

/// Asserts the server still serves fresh connections end to end.
fn assert_server_alive(server: &NetServer, seed: u64) {
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let mut request = NetRequest::new("liveness-probe", weight(seed), "mvq");
    request.spec = quick_spec();
    request.seed = Some(seed);
    let outcome = client.submit(&request).expect("the server must survive other connections dying");
    assert_eq!(outcome.name, "liveness-probe");
    let artifact = outcome.artifact().expect("decode artifact");
    assert_eq!(artifact.reconstruct().expect("reconstruct").dims(), &[32, 16]);
}

#[test]
fn round_trip_serves_the_cache_blob_bytes_on_a_hit() {
    let server = one_worker_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let mut request = NetRequest::new("conv0", weight(10), "mvq");
    request.spec = quick_spec();
    request.seed = Some(5);

    let first = client.submit(&request).expect("first submit");
    assert!(!first.from_cache);
    assert_eq!(
        first.artifact().expect("decode").reconstruct().expect("reconstruct").dims(),
        &[32, 16]
    );

    // A repeat of the same (algo, weight, spec, seed) identity must hit
    // the cache, and the body must be the cache's own blob: the framed
    // bytes of hit and miss are identical because the wire and the
    // cache share one codec.
    let second = client.submit(&request).expect("second submit");
    assert!(second.from_cache, "identical resubmission must be a cache hit");
    assert_eq!(first.bytes, second.bytes, "a hit must serve the stored blob byte for byte");

    let stats = server.stats();
    assert_eq!(stats.responses_ok, 2);
    assert_eq!(stats.responses_err, 0);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn truncated_frame_closes_the_connection_but_not_the_server() {
    let server = one_worker_server();
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // promise 100 bytes, deliver 10, hang up mid-frame
        stream.write_all(&100u32.to_le_bytes()).expect("write prefix");
        stream.write_all(&[0u8; 10]).expect("write partial frame");
    }
    wait_until("truncated frame counted as protocol garbage", || {
        server.stats().protocol_errors == 1
    });
    assert_server_alive(&server, 11);
}

#[test]
fn bad_magic_closes_the_connection_but_not_the_server() {
    let server = one_worker_server();
    let mut frame = valid_request_frame(12);
    frame[..4].copy_from_slice(b"XXXX");
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_raw(&mut stream, &frame);
    }
    wait_until("bad magic counted as protocol garbage", || server.stats().protocol_errors == 1);
    assert_eq!(server.stats().requests, 0, "a bad-magic frame must never reach the service");
    assert_server_alive(&server, 13);
}

#[test]
fn future_format_version_is_refused_not_guessed_at() {
    let server = one_worker_server();
    let mut frame = valid_request_frame(14);
    // bytes 4..6 are the u16 le format version; claim one from the future
    frame[4..6].copy_from_slice(&2u16.to_le_bytes());
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_raw(&mut stream, &frame);
    }
    wait_until("future version counted as protocol garbage", || {
        server.stats().protocol_errors == 1
    });
    assert_eq!(server.stats().requests, 0, "a future-version frame must never reach the service");
    assert_server_alive(&server, 15);
}

#[test]
fn oversize_length_prefix_is_refused_before_allocating() {
    let server = one_worker_server();
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // a hostile prefix claiming ~4 GiB; the server must refuse it
        // from the prefix alone rather than attempt the allocation
        stream.write_all(&u32::MAX.to_le_bytes()).expect("write prefix");
    }
    wait_until("oversize prefix counted as protocol garbage", || {
        server.stats().protocol_errors == 1
    });
    assert_server_alive(&server, 16);
}

#[test]
fn client_disconnect_cancels_its_queued_job_and_frees_the_worker() {
    let server = one_worker_server();

    // Occupy the single worker with a slow direct submission.
    let blocker = server.service().submit_one(blocker_request(20));
    wait_until("worker takes the blocker", || server.service().queued() == 0);

    // A doomed client queues one job behind the blocker, then vanishes.
    let doomed_weight = weight(21);
    let doomed_spec = quick_spec();
    let doomed_key = CacheKey::new("mvq", &doomed_weight, &doomed_spec, 7).expect("cache key");
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let frame = WireRequest {
            id: 0,
            name: "doomed".into(),
            algo: "mvq".into(),
            spec: doomed_spec,
            seed: Some(7),
            priority: Priority::default(),
            cache_mode: CacheMode::default(),
            deadline_ms: None,
            weight: doomed_weight,
        }
        .encode()
        .expect("encode doomed request");
        write_raw(&mut stream, &frame);
        wait_until("doomed request reaches the service", || server.stats().requests == 1);
        // dropping the stream here is the disconnect
    }

    // The reader observes EOF and cancels the queued job's token; when
    // the worker finishes the blocker and dequeues, the dead job is
    // discarded — it never runs.
    wait_until("queued job cancelled on disconnect", || server.stats().cancelled_disconnect == 1);
    assert!(blocker.wait().is_ok(), "the blocker is unaffected by its neighbor's disconnect");
    assert!(
        server.service().cache().get_raw(&doomed_key).expect("cache read").is_none(),
        "the disconnected client's job ran anyway: its artifact reached the cache"
    );

    // The worker is free for the living.
    assert_server_alive(&server, 22);
}

#[test]
fn deadline_expiry_while_queued_comes_back_as_cancelled_deadline() {
    let server = one_worker_server();
    let blocker = server.service().submit_one(blocker_request(30));
    wait_until("worker takes the blocker", || server.service().queued() == 0);

    let expired_weight = weight(31);
    let expired_spec = quick_spec();
    let expired_key = CacheKey::new("mvq", &expired_weight, &expired_spec, 9).expect("cache key");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let mut request = NetRequest::new("expired", expired_weight, "mvq");
    request.spec = expired_spec;
    request.seed = Some(9);
    // a 1 ms queue budget behind a multi-second blocker: certain expiry
    request.deadline = Some(Duration::from_millis(1));

    match client.submit(&request) {
        Err(NetError::Remote { kind: WireErrorKind::CancelledDeadline, message }) => {
            assert!(message.contains("expired"), "message should name the job: {message}");
        }
        other => panic!("expected a CancelledDeadline response, got {other:?}"),
    }
    assert_eq!(server.stats().cancelled_deadline, 1);
    assert!(blocker.wait().is_ok(), "the blocker is unaffected by the expiry behind it");
    assert!(
        server.service().cache().get_raw(&expired_key).expect("cache read").is_none(),
        "the expired job ran anyway: its artifact reached the cache"
    );
    assert_server_alive(&server, 32);
}

#[test]
fn drain_under_load_flushes_every_accepted_response() {
    let mut server = one_worker_server();
    let addr = server.local_addr();

    // Three clients, three distinct jobs, one worker: at shutdown some
    // are mid-compression or still queued.
    let clients: Vec<_> = (0..3u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut request = NetRequest::new(format!("drain-{i}"), weight(40 + i), "mvq");
                request.spec = PipelineSpec { k: 8, swap_trials: 2_000, ..PipelineSpec::default() };
                request.seed = Some(i);
                client.submit(&request)
            })
        })
        .collect();

    wait_until("all three requests accepted", || server.stats().requests == 3);
    // Drain with the jobs in flight: stop accepting, flush accepted
    // work, close. Every client must still get its response.
    server.shutdown();

    for (i, handle) in clients.into_iter().enumerate() {
        let outcome = handle
            .join()
            .expect("client thread")
            .unwrap_or_else(|e| panic!("drain dropped client {i}'s accepted response: {e}"));
        assert_eq!(outcome.name, format!("drain-{i}"));
    }
    let stats = server.stats();
    assert_eq!(stats.responses_ok, 3, "every accepted job's response must flush before close");
    assert_eq!(stats.cancelled_disconnect, 0, "a drain must not masquerade as client disconnects");
}
