//! Integration tests: the full compression pipeline across crates
//! (mvq-nn training → mvq-core compression → accuracy bookkeeping).

use mvq::core::{
    finetune_codebooks, prune_model, ClusterScope, CodebookFinetuneConfig, GroupingStrategy,
    ModelCompressor, MvqConfig,
};
use mvq::nn::data::SyntheticClassification;
use mvq::nn::models::tiny_cnn;
use mvq::nn::optim::{Optimizer, OptimizerKind};
use mvq::nn::train::{evaluate_classifier, train_classifier, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_tiny(seed: u64) -> (mvq::nn::Sequential, SyntheticClassification, f32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = SyntheticClassification::generate(4, 192, 96, 8, &mut rng);
    let mut model = tiny_cnn(4, 8, &mut rng);
    let tc = TrainConfig { epochs: 6, batch_size: 32, ..TrainConfig::default() };
    let mut opt = Optimizer::new(OptimizerKind::sgd(0.05, 0.9, 1e-4));
    train_classifier(&mut model, &data, &tc, &mut opt, &mut rng).unwrap();
    let acc = evaluate_classifier(&mut model, &data).unwrap();
    (model, data, acc)
}

#[test]
fn full_pipeline_recovers_accuracy() {
    let (model, data, dense_acc) = trained_tiny(0);
    assert!(dense_acc > 0.5, "dense model should learn: {dense_acc}");
    let mut rng = StdRng::seed_from_u64(1);
    let mut compressed_model = model.clone();
    // moderate compression: 2:4 within d=16 (50% sparsity), 16 codewords
    let cfg = MvqConfig::new(16, 16, 8, 16).unwrap();
    let mut compressed =
        ModelCompressor::new(cfg).compress(&mut compressed_model, &mut rng).unwrap();
    let after_cluster = evaluate_classifier(&mut compressed_model, &data).unwrap();
    let ft =
        CodebookFinetuneConfig { epochs: 3, batch_size: 32, optimizer: OptimizerKind::adam(2e-3) };
    finetune_codebooks(&mut compressed_model, &mut compressed, &data, &ft, &mut rng).unwrap();
    let final_acc = evaluate_classifier(&mut compressed_model, &data).unwrap();
    // fine-tuning should not make things worse, and the compressed model
    // must stay a real classifier
    assert!(final_acc >= after_cluster - 0.05, "{final_acc} vs {after_cluster}");
    assert!(final_acc > 0.3, "compressed accuracy collapsed: {final_acc}");
    assert!(compressed.compression_ratio() > 5.0);
}

#[test]
fn pruned_positions_stay_zero_through_finetuning() {
    let (model, data, _) = trained_tiny(2);
    let mut rng = StdRng::seed_from_u64(3);
    let mut m = model.clone();
    let cfg = MvqConfig::new(8, 16, 4, 16).unwrap();
    let mut compressed = ModelCompressor::new(cfg).compress(&mut m, &mut rng).unwrap();
    let ft = CodebookFinetuneConfig { epochs: 2, batch_size: 32, ..Default::default() };
    finetune_codebooks(&mut m, &mut compressed, &data, &ft, &mut rng).unwrap();
    // every compressed conv must hold exactly 75% zeros at the masked
    // positions after fine-tuning
    let mut weights = Vec::new();
    m.visit_convs(&mut |c| weights.push(c.weight.value.clone()));
    for entry in &compressed.entries {
        let grouped =
            GroupingStrategy::OutputChannelWise.group(&weights[entry.conv_index], 16).unwrap();
        for j in 0..entry.mask.ng() {
            for t in 0..16 {
                if !entry.mask.row(j)[t] {
                    assert_eq!(
                        grouped.at(&[j, t]).unwrap(),
                        0.0,
                        "conv {} subvector {j} lane {t} not zero",
                        entry.conv_index
                    );
                }
            }
        }
    }
}

#[test]
fn layerwise_beats_crosslayer_sse_at_equal_k() {
    // The paper finds layerwise clustering superior (Fig. 13): per-layer
    // codebooks specialize, so total masked SSE is lower.
    let (model, _, _) = trained_tiny(4);
    let run = |scope: ClusterScope| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = model.clone();
        let reference = model.clone();
        let cfg = MvqConfig::new(16, 16, 4, 16).unwrap();
        let c = ModelCompressor::new(cfg).with_scope(scope).compress(&mut m, &mut rng).unwrap();
        c.total_masked_sse(&reference).unwrap()
    };
    let lw = run(ClusterScope::LayerWise);
    let cl = run(ClusterScope::CrossLayer);
    assert!(lw < cl, "layerwise {lw} should beat crosslayer {cl}");
}

#[test]
fn prune_then_compress_is_consistent_with_compress() {
    // prune_model + ModelCompressor::compress find the same masks
    // (magnitude pruning is deterministic).
    let (model, _, _) = trained_tiny(6);
    let mut pruned = model.clone();
    let masks = prune_model(&mut pruned, GroupingStrategy::OutputChannelWise, 16, 4, 16).unwrap();
    let mut compressed_model = model.clone();
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = MvqConfig::new(8, 16, 4, 16).unwrap();
    let compressed = ModelCompressor::new(cfg).compress(&mut compressed_model, &mut rng).unwrap();
    for (entry, mask) in compressed.entries.iter().zip(masks.iter()) {
        let mask = mask.as_ref().expect("tiny_cnn convs all compressible");
        assert_eq!(entry.mask.bits(), mask.bits());
    }
}

#[test]
fn compression_ratio_grows_with_sparsity_knob() {
    // 1:16 keeps fewer mask bits viable codewords: CR(1:16) > CR(8:16)
    // at equal k and d (smaller C(M,N) => fewer mask bits).
    let (model, _, _) = trained_tiny(8);
    let ratio = |keep: usize| {
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = model.clone();
        let cfg = MvqConfig::new(8, 16, keep, 16).unwrap();
        ModelCompressor::new(cfg).compress(&mut m, &mut rng).unwrap().compression_ratio()
    };
    let r1 = ratio(1);
    let r8 = ratio(8);
    assert!(r1 > r8, "CR(1:16) {r1} should exceed CR(8:16) {r8}");
}
