//! Failure-injection tests: every cross-crate error path must fail
//! loudly with a typed error, never panic or silently corrupt.

use mvq::accel::{AccelError, FunctionalEws, HwConfig, HwSetting};
use mvq::core::pipeline::{by_name, PipelineSpec};
use mvq::core::store::{ArtifactCache, CacheKey, Persist, FORMAT_VERSION};
use mvq::core::{
    masked_assign_with, masked_kmeans, masked_kmeans_minibatch, masked_sse_with, prune_matrix_nm,
    CompressedArtifact, GroupingStrategy, KernelStrategy, KmeansConfig, MvqCompressor, MvqConfig,
    MvqError, NmMask,
};
use mvq::nn::layers::{Conv2d, Module, Sequential};
use mvq::nn::NnError;
use mvq::serve::{CompressionRequest, CompressionService, JobError, SubmitError};
use mvq::tensor::{Tensor, TensorError};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tensor_errors_are_typed_and_descriptive() {
    let err = Tensor::from_vec(vec![2, 3], vec![0.0; 5]).unwrap_err();
    assert!(matches!(err, TensorError::LengthMismatch { expected: 6, actual: 5 }));
    let a = Tensor::zeros(vec![2, 3]);
    let b = Tensor::zeros(vec![3, 3]);
    let err = a.add(&b).unwrap_err();
    assert!(err.to_string().contains("add"));
}

#[test]
fn model_shape_errors_name_the_layer() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut model =
        Sequential::new(vec![Module::Conv2d(Conv2d::new(3, 16, 3, 1, 1, 1, false, &mut rng))]);
    // wrong channel count
    let err = model.forward(&Tensor::zeros(vec![1, 4, 8, 8]), false).unwrap_err();
    match err {
        NnError::BadInput { layer, .. } => assert!(layer.contains("Conv2d")),
        other => panic!("unexpected error {other:?}"),
    }
    // backward without forward
    let err = model.backward(&Tensor::zeros(vec![1, 16, 8, 8])).unwrap_err();
    assert!(matches!(err, NnError::NoForwardCache(_)));
}

#[test]
fn compression_rejects_incompatible_models() {
    // a weight whose output channels cannot be grouped at d=16
    let w = Tensor::zeros(vec![10, 4, 3, 3]);
    let err = GroupingStrategy::OutputChannelWise.group(&w, 16).unwrap_err();
    assert!(matches!(err, MvqError::IncompatibleShape { .. }));
    assert!(err.to_string().contains("10"));
}

#[test]
fn compression_config_errors_cascade_cleanly() {
    assert!(matches!(MvqConfig::new(0, 16, 4, 16), Err(MvqError::InvalidConfig(_))));
    assert!(matches!(MvqConfig::new(8, 10, 4, 16), Err(MvqError::InvalidConfig(_))));
    // valid config, hostile data: all-zero weights cannot quantize a
    // codebook (every codeword collapses to zero)
    let mut rng = StdRng::seed_from_u64(1);
    let zeros = Tensor::zeros(vec![32, 16]);
    let cfg = MvqConfig::new(4, 16, 4, 16).unwrap();
    let res = MvqCompressor::new(cfg).compress_matrix(&zeros, &mut rng);
    assert!(matches!(res, Err(MvqError::InvalidConfig(_))), "{res:?}");
}

#[test]
fn clustering_rejects_nan_free_contract_violations() {
    // mismatched mask vs data dimensions
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq::tensor::uniform(vec![16, 8], -1.0, 1.0, &mut rng);
    let (pruned, _) = prune_matrix_nm(&w, 2, 4).unwrap();
    let other = mvq::tensor::uniform(vec![8, 8], -1.0, 1.0, &mut rng);
    let (_, wrong_mask) = prune_matrix_nm(&other, 2, 4).unwrap();
    let err = masked_kmeans(&pruned, &wrong_mask, &KmeansConfig::new(4), &mut rng).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
}

#[test]
fn kernel_rejects_empty_layers() {
    // an empty [0, d] layer must be a typed error for every kernel entry
    let empty = Tensor::from_vec(vec![0, 8], vec![]).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let w = mvq::tensor::uniform(vec![8, 8], -1.0, 1.0, &mut rng);
    let (_, mask) = prune_matrix_nm(&w, 2, 4).unwrap();
    let centers = Tensor::ones(vec![2, 8]);
    for kernel in KernelStrategy::ALL {
        let err = masked_assign_with(kernel, &empty, &mask, &centers).unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)), "{kernel:?}: {err:?}");
        let cfg = KmeansConfig::new(2).with_kernel(kernel);
        let err = masked_kmeans(&empty, &mask, &cfg, &mut rng).unwrap_err();
        assert!(matches!(err, MvqError::InvalidConfig(_)), "{kernel:?}: {err:?}");
    }
}

#[test]
fn kernel_rejects_empty_and_mismatched_codebooks() {
    let mut rng = StdRng::seed_from_u64(1);
    let w = mvq::tensor::uniform(vec![16, 8], -1.0, 1.0, &mut rng);
    let (pruned, mask) = prune_matrix_nm(&w, 2, 4).unwrap();
    // k = 0 centers
    let none = Tensor::zeros(vec![0, 8]);
    let err = masked_assign_with(KernelStrategy::Blocked, &pruned, &mask, &none).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // codeword length disagrees with the data
    let wrong = Tensor::zeros(vec![4, 16]);
    let err = masked_assign_with(KernelStrategy::Blocked, &pruned, &mask, &wrong).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // SSE with out-of-range assignments
    let centers = Tensor::ones(vec![2, 8]);
    let err =
        masked_sse_with(KernelStrategy::Blocked, &pruned, &mask, &centers, &[7; 16]).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
}

#[test]
fn simd_kernel_edge_cases_match_the_oracle() {
    // The shapes the chunked kernel can get wrong: d smaller than the
    // 8-lane chunk (tail-only), d not a multiple of the chunk, k smaller
    // than the 4-codeword block, single rows, and subvector counts that
    // are not multiples of anything. Every one must reproduce the naive
    // assignment exactly.
    let cases: &[(usize, usize, usize, usize, usize)] = &[
        // (ng, d, k, keep_n, m)
        (1, 4, 1, 2, 4),   // d < chunk, k < block, one row
        (7, 4, 3, 2, 4),   // tail-only lanes, k below the block width
        (5, 12, 2, 3, 4),  // one full chunk + 4-lane tail
        (9, 8, 5, 2, 4),   // exactly one chunk, k = block + 1
        (13, 24, 6, 4, 8), // three chunks, odd row count
    ];
    for &(ng, d, k, keep_n, m) in cases {
        let mut rng = StdRng::seed_from_u64((ng * 31 + d) as u64);
        let w = mvq::tensor::uniform(vec![ng, d], -1.0, 1.0, &mut rng);
        let (pruned, mask) = prune_matrix_nm(&w, keep_n, m).unwrap();
        let centers = mvq::tensor::uniform(vec![k, d], -1.0, 1.0, &mut rng);
        let naive = masked_assign_with(KernelStrategy::Naive, &pruned, &mask, &centers).unwrap();
        let simd = masked_assign_with(KernelStrategy::Simd, &pruned, &mask, &centers).unwrap();
        assert_eq!(naive, simd, "ng={ng} d={d} k={k}");
    }
}

#[test]
fn simd_kernel_rejects_the_same_degenerate_inputs_as_the_oracle() {
    // Mirrors of the blocked-kernel failure cases, under `simd`: every
    // degenerate input must be the same typed error, never a panic or a
    // silently wrong answer.
    let mut rng = StdRng::seed_from_u64(4);
    let w = mvq::tensor::uniform(vec![16, 8], -1.0, 1.0, &mut rng);
    let (pruned, mask) = prune_matrix_nm(&w, 2, 4).unwrap();
    // empty [0, d] layer
    let empty = Tensor::from_vec(vec![0, 8], vec![]).unwrap();
    let centers = Tensor::ones(vec![2, 8]);
    let err = masked_assign_with(KernelStrategy::Simd, &empty, &mask, &centers).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)), "{err:?}");
    // empty codebook
    let none = Tensor::zeros(vec![0, 8]);
    let err = masked_assign_with(KernelStrategy::Simd, &pruned, &mask, &none).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // codeword length mismatch
    let wrong = Tensor::zeros(vec![4, 16]);
    let err = masked_assign_with(KernelStrategy::Simd, &pruned, &mask, &wrong).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // SSE with out-of-range assignments
    let err =
        masked_sse_with(KernelStrategy::Simd, &pruned, &mask, &centers, &[7; 16]).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // all-zero masks stay unrepresentable regardless of strategy: the
    // error fires in the mask constructor, before any kernel dispatch
    let err = NmMask::from_bits(2, 4, 2, 4, vec![false; 8]).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // d not dividing M is rejected before the simd kernel ever runs
    assert!(matches!(MvqConfig::new(8, 6, 2, 4), Err(MvqError::InvalidConfig(_))));
    // and a full clustering run over an empty layer errors under simd too
    let cfg = KmeansConfig::new(2).with_kernel(KernelStrategy::Simd);
    let err = masked_kmeans(&empty, &mask, &cfg, &mut rng).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)), "{err:?}");
}

#[test]
fn kernel_strategy_parsing_fails_loudly_on_unknown_names() {
    // FromStr is the single parser for strategy names: round-trips every
    // canonical name case-insensitively, typed error otherwise.
    for kernel in KernelStrategy::ALL {
        assert_eq!(kernel.name().parse::<KernelStrategy>().unwrap(), kernel);
        assert_eq!(kernel.name().to_uppercase().parse::<KernelStrategy>().unwrap(), kernel);
    }
    let err = "avx512-dreams".parse::<KernelStrategy>().unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    assert!(err.to_string().contains("avx512-dreams"), "{err}");
    let err = "".parse::<KernelStrategy>().unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
}

#[test]
fn minibatch_rejects_k_beyond_live_vectors() {
    // 8 subvectors, 3 of them dead: k = 6 exceeds the 5 live rows the
    // minibatch sampler is allowed to draw from
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq::tensor::uniform(vec![8, 8], -1.0, 1.0, &mut rng);
    let (mut pruned, mask) = prune_matrix_nm(&w, 2, 4).unwrap();
    for j in [1usize, 4, 6] {
        pruned.row_mut(j).fill(0.0);
    }
    let err =
        masked_kmeans_minibatch(&pruned, &mask, &KmeansConfig::new(6), 8, &mut rng).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)), "{err:?}");
    // and a zero batch size is rejected before any work happens
    let err =
        masked_kmeans_minibatch(&pruned, &mask, &KmeansConfig::new(2), 0, &mut rng).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
}

#[test]
fn all_zero_masks_cannot_be_constructed() {
    // the N:M invariant (keep exactly N per group) makes an all-zero mask
    // unrepresentable; the constructor must say so, not panic downstream
    let err = NmMask::from_bits(2, 4, 2, 4, vec![false; 8]).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    // all-zero *data* under a valid mask: minibatch has nothing live to
    // sample and fails loudly
    let zeros = Tensor::zeros(vec![8, 8]);
    let mut rng = StdRng::seed_from_u64(3);
    let w = mvq::tensor::uniform(vec![8, 8], -1.0, 1.0, &mut rng);
    let (_, mask) = prune_matrix_nm(&w, 2, 4).unwrap();
    let err =
        masked_kmeans_minibatch(&zeros, &mask, &KmeansConfig::new(2), 4, &mut rng).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
}

#[test]
fn mask_rejects_d_not_dividing_group_size() {
    // d = 6 is not a multiple of M = 4: typed error from the mask, and the
    // same config is uncompilable into an MvqConfig
    let err = NmMask::from_bits(1, 6, 2, 4, vec![true; 6]).unwrap_err();
    assert!(matches!(err, MvqError::InvalidConfig(_)));
    assert!(matches!(MvqConfig::new(8, 6, 2, 4), Err(MvqError::InvalidConfig(_))));
}

fn sample_artifact(algo: &str) -> CompressedArtifact {
    let mut rng = StdRng::seed_from_u64(77);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
    by_name(algo, &spec).unwrap().compress_matrix(&w, &mut rng).unwrap()
}

#[test]
fn truncated_blobs_are_typed_errors_at_every_length() {
    // chopping the blob anywhere — inside the header, at a field
    // boundary, mid-payload — must yield MvqError::Codec, never a panic
    // or a silently short artifact
    let bytes = sample_artifact("mvq").to_bytes().expect("encode");
    for len in [0, 3, 4, 6, 7, 14, 22, 23, bytes.len() / 2, bytes.len() - 1] {
        let err = CompressedArtifact::from_bytes(&bytes[..len]).unwrap_err();
        assert!(matches!(err, MvqError::Codec(_)), "len {len}: {err:?}");
    }
    // and appending trailing garbage is equally loud
    let mut extended = bytes.clone();
    extended.push(0);
    let err = CompressedArtifact::from_bytes(&extended).unwrap_err();
    assert!(matches!(err, MvqError::Codec(_)), "{err:?}");
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = sample_artifact("vq-a").to_bytes().expect("encode");
    bytes[0] = b'X';
    let err = CompressedArtifact::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, MvqError::Codec(_)));
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn future_format_version_is_rejected_not_misread() {
    let mut bytes = sample_artifact("pqf").to_bytes().expect("encode");
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[4] = future[0];
    bytes[5] = future[1];
    let err = CompressedArtifact::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, MvqError::Codec(_)));
    assert!(err.to_string().contains("version"), "{err}");
}

#[test]
fn wrong_blob_kind_is_rejected() {
    // a valid artifact blob is not a ModelArtifacts blob: the kind tag in
    // the header must prevent cross-type decoding
    let bytes = sample_artifact("pvq").to_bytes().expect("encode");
    let err = mvq::core::ModelArtifacts::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, MvqError::Codec(_)), "{err:?}");
}

#[test]
fn every_flipped_payload_byte_is_caught() {
    // the checksum must catch any single-byte payload corruption — this
    // is what keeps a bit-flipped cache blob from decoding into subtly
    // wrong weights
    let bytes = sample_artifact("mvq").to_bytes().expect("encode");
    const HEADER_LEN: usize = 23;
    for pos in HEADER_LEN..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        let err = CompressedArtifact::from_bytes(&corrupt).unwrap_err();
        assert!(matches!(err, MvqError::Codec(_)), "flipped byte {pos}: {err:?}");
    }
}

#[test]
fn corrupt_cache_blob_is_rejected_loudly() {
    let dir = std::env::temp_dir().join(format!("mvq-corrupt-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::with_dir(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let spec = PipelineSpec { k: 8, ..PipelineSpec::default() };
    let key = CacheKey::new("mvq", &w, &spec, 7).unwrap();
    cache.put(&key, &sample_artifact("mvq")).unwrap();

    // flip one payload byte on disk, then look it up through a cold cache
    let path = dir.join(key.blob_name());
    let mut blob = std::fs::read(&path).unwrap();
    let last = blob.len() - 1;
    blob[last] ^= 0x10;
    std::fs::write(&path, &blob).unwrap();
    let cold = ArtifactCache::with_dir(&dir).unwrap();
    let err = cold.get(&key).unwrap_err();
    assert!(matches!(err, MvqError::Codec(_)), "{err:?}");
    assert_eq!(cold.stats().corrupt_rejections, 1);
    assert_eq!(cold.stats().hits, 0, "a corrupt blob must never count as a hit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn differing_specs_never_collide_in_cache_keys() {
    // kernel strategy and N:M pattern changes alter what a compression
    // produces; their fingerprints (and therefore cache keys) must differ
    // so the cache cannot serve an artifact produced under another config
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let base = PipelineSpec::default();
    let mut keys = Vec::new();
    for kernel in KernelStrategy::ALL {
        keys.push(CacheKey::new("mvq", &w, &base.clone().with_kernel(kernel), 0).unwrap());
    }
    for nm in [(2usize, 16usize), (8, 16), (4, 8), (2, 8)] {
        keys.push(CacheKey::new("mvq", &w, &base.clone().with_nm(nm.0, nm.1), 0).unwrap());
    }
    for (i, a) in keys.iter().enumerate() {
        for b in &keys[i + 1..] {
            assert_ne!(a, b, "distinct specs produced colliding cache keys");
        }
    }
    // the same holds for the blob file names the disk cache uses
    let mut names: Vec<String> = keys.iter().map(CacheKey::blob_name).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), keys.len(), "blob names collide");
}

#[test]
fn one_poisoned_job_does_not_abort_the_rest() {
    // The v2 isolation contract: a batch with one job whose data cannot
    // compress (all-zero weights collapse every codeword) completes all
    // the healthy jobs and reports a typed JobError on the poisoned
    // ticket only.
    let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
    let service = CompressionService::builder().workers(2).build().unwrap();
    let mut rng = StdRng::seed_from_u64(0xBAD);
    let healthy: Vec<mvq::serve::Ticket> = (0..4)
        .map(|i| {
            let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
            let request = CompressionRequest::builder(format!("healthy-{i}"), w, "mvq")
                .spec(spec.clone())
                .seed(i)
                .build()
                .unwrap();
            service.submit_one(request)
        })
        .collect();
    let poisoned = service.submit_one(
        CompressionRequest::builder("poisoned", Tensor::zeros(vec![32, 16]), "mvq")
            .spec(spec.clone())
            .build()
            .unwrap(),
    );
    match poisoned.wait() {
        Err(JobError::Compression { name, source }) => {
            assert_eq!(name, "poisoned");
            assert!(matches!(source, MvqError::InvalidConfig(_)), "{source:?}");
        }
        other => panic!("poisoned job must fail with a typed compression error, got {other:?}"),
    }
    for ticket in healthy {
        let outcome = ticket.wait().unwrap_or_else(|e| panic!("healthy job failed: {e}"));
        assert!(outcome.artifact().expect("decode").compression_ratio() > 1.0);
    }
}

#[test]
fn queue_admission_control_is_typed_and_loud() {
    // A zero-worker service never drains, so admission control is
    // deterministic: the bounded queue refuses the overflowing request
    // (handing it back intact) and dropping the service resolves the
    // abandoned tickets to Disconnected — never a hang or a panic.
    let service = CompressionService::builder().workers(0).queue_capacity(1).build().unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let request = |name: &str, seed: u64| {
        CompressionRequest::builder(name, w.clone(), "mvq").seed(seed).build().unwrap()
    };
    let queued = service.try_submit_one(request("first", 0)).unwrap();
    let refused = match service.try_submit_one(request("second", 1)) {
        Err(SubmitError::QueueFull { capacity, request }) => {
            assert_eq!(capacity, 1);
            request
        }
        other => panic!("expected QueueFull, got {other:?}"),
    };
    assert_eq!(refused.name(), "second");
    // an identical in-flight job dedups instead of consuming queue space,
    // so duplicates are immune to backpressure
    let rider = service.try_submit_one(request("rider", 0)).unwrap();
    assert_eq!(rider.key(), queued.key());
    drop(service);
    assert!(matches!(queued.wait(), Err(JobError::Disconnected { .. })));
    assert!(matches!(rider.wait(), Err(JobError::Disconnected { .. })));
}

#[test]
fn shutdown_wakes_blocked_submitters_and_refuses_new_work() {
    // Regression: shutdown used to notify only the workers' condvar, so a
    // submitter blocked on a full queue (`submit_one` waiting for space)
    // slept through shutdown forever — a deadlock between `drop` (waiting
    // to join workers) and the submitter (waiting for a queue slot that a
    // zero-worker service will never free). Shutdown must wake the space
    // waiters too, and every submission from then on must resolve to a
    // typed Disconnected instead of hanging.
    let service = std::sync::Arc::new(
        CompressionService::builder().workers(0).queue_capacity(1).build().unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(4);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let request = |name: &str, seed: u64| {
        CompressionRequest::builder(name, w.clone(), "mvq").seed(seed).build().unwrap()
    };
    let filler = service.submit_one(request("filler", 0));
    let blocked = {
        let service = std::sync::Arc::clone(&service);
        let request = request("blocked", 1);
        std::thread::spawn(move || service.submit_one(request).wait())
    };
    // give the submitter time to reach the full-queue wait (correctness
    // does not depend on it: the wait loop re-checks shutdown on wakeup)
    std::thread::sleep(std::time::Duration::from_millis(50));
    service.shutdown();
    let result = blocked.join().expect("blocked submitter must return after shutdown");
    assert!(matches!(result, Err(JobError::Disconnected { .. })), "{result:?}");
    // submissions after shutdown resolve immediately, typed — not a hang
    let late = service.submit_one(request("late", 2)).wait();
    assert!(matches!(late, Err(JobError::Disconnected { .. })), "{late:?}");
    drop(service);
    assert!(matches!(filler.wait(), Err(JobError::Disconnected { .. })));
}

#[test]
fn deterministic_failures_are_remembered_not_recompressed() {
    // An all-zero weight fails compression deterministically (a zero
    // codebook cannot quantize), and the job is seeded — so the cache
    // remembers the failure and the identical resubmission fails fast
    // from the negative cache instead of re-running the whole pipeline.
    let service = CompressionService::builder().workers(1).build().unwrap();
    let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
    let request = || {
        CompressionRequest::builder("zeros", Tensor::zeros(vec![32, 16]), "mvq")
            .spec(spec.clone())
            .seed(5)
            .build()
            .unwrap()
    };
    let first = service.submit_one(request()).wait();
    let second = service.submit_one(request()).wait();
    let (
        Err(JobError::Compression { source: original, .. }),
        Err(JobError::Compression { source: remembered, .. }),
    ) = (first, second)
    else {
        panic!("both submissions must fail with typed compression errors");
    };
    assert_eq!(original, remembered, "the remembered failure must replay the original error");
    let stats = service.cache_stats();
    assert_eq!(stats.negative_hits, 1, "{stats:?}");
    assert_eq!(stats.negative_len, 1, "{stats:?}");
}

#[test]
fn corrupt_cache_blob_fails_the_job_not_the_service() {
    // A bit-flipped blob on disk must surface as a typed Cache error on
    // the job that hits it, while the service keeps serving other jobs.
    let dir = std::env::temp_dir().join(format!("mvq-corrupt-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = StdRng::seed_from_u64(2);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let spec = PipelineSpec { k: 8, swap_trials: 100, ..PipelineSpec::default() };
    let request = |name: &str, seed: u64| {
        CompressionRequest::builder(name, w.clone(), "mvq")
            .spec(spec.clone())
            .seed(seed)
            .build()
            .unwrap()
    };
    let key = {
        let service = CompressionService::with_cache_dir(&dir).unwrap();
        service.submit_one(request("seed7", 7)).wait().unwrap().key
    };
    let path = dir.join(key.blob_name());
    let mut blob = std::fs::read(&path).unwrap();
    let last = blob.len() - 1;
    blob[last] ^= 0x10;
    std::fs::write(&path, &blob).unwrap();

    let service = CompressionService::with_cache_dir(&dir).unwrap();
    match service.submit_one(request("poisoned-blob", 7)).wait() {
        Err(JobError::Cache { name, source }) => {
            assert_eq!(name, "poisoned-blob");
            assert!(matches!(source, MvqError::Codec(_)), "{source:?}");
        }
        other => panic!("corrupt blob must be a typed cache error, got {other:?}"),
    }
    assert_eq!(service.cache_stats().corrupt_rejections, 1);
    let healthy = service.submit_one(request("other-seed", 8)).wait().unwrap();
    assert!(!healthy.from_cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn request_validation_fails_before_any_work_queues() {
    // The v2 request builder front-loads every v1 submit-time failure:
    // unknown algorithm, uncompilable spec, empty weight, empty name.
    let mut rng = StdRng::seed_from_u64(3);
    let w = mvq::tensor::kaiming_normal(vec![32, 16], 16, &mut rng);
    let cases: Vec<Result<CompressionRequest, MvqError>> = vec![
        CompressionRequest::builder("a", w.clone(), "vqgan").build(),
        CompressionRequest::builder("a", w.clone(), "mvq")
            .spec(PipelineSpec { d: 6, m: 4, ..PipelineSpec::default() })
            .build(),
        CompressionRequest::builder("a", Tensor::from_vec(vec![0, 8], vec![]).unwrap(), "mvq")
            .build(),
        CompressionRequest::builder("", w, "mvq").build(),
    ];
    for case in cases {
        let err = case.expect_err("invalid request must not build");
        assert!(matches!(err, MvqError::InvalidConfig(_)), "{err:?}");
    }
}

#[test]
fn hardware_config_errors_are_typed() {
    let err = HwConfig::new(HwSetting::EwsCms, 40).unwrap_err();
    assert!(matches!(err, AccelError::InvalidConfig(_)));
    assert!(err.to_string().contains("40"));
}

#[test]
fn functional_array_rejects_mismatched_operands() {
    let arr = FunctionalEws::new(HwConfig::new(HwSetting::Ews, 16).unwrap());
    let w = Tensor::zeros(vec![16, 8]);
    let x = Tensor::zeros(vec![9, 4]); // reduction mismatch
    assert!(arr.run_dense(&w, &x).is_err());
}

#[test]
fn pruning_never_produces_nan_or_changes_kept_values() {
    // adversarial input: denormals, zeros, equal magnitudes
    let w = Tensor::from_vec(
        vec![2, 8],
        vec![
            0.0, -0.0, 1.0e-38, -1.0e-38, 1.0, -1.0, 0.5, -0.5, //
            2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0,
        ],
    )
    .unwrap();
    let (pruned, mask) = prune_matrix_nm(&w, 2, 4).unwrap();
    assert!(pruned.data().iter().all(|v| v.is_finite()));
    // ties: exactly 2 kept per group even when all values equal
    for j in 0..2 {
        for g in 0..2 {
            let kept = (0..4).filter(|&t| mask.row(j)[g * 4 + t]).count();
            assert_eq!(kept, 2);
        }
    }
}

#[test]
fn optimizer_survives_zero_gradients() {
    // a full optimizer step with all-zero grads must be a no-op for SGD
    // without decay, and finite for Adam
    let mut rng = StdRng::seed_from_u64(3);
    let mut model =
        Sequential::new(vec![Module::Conv2d(Conv2d::new(1, 16, 3, 1, 1, 1, true, &mut rng))]);
    let mut before = Vec::new();
    model.visit_params_mut(&mut |p| before.push(p.value.clone()));
    let mut opt = mvq::nn::optim::Optimizer::new(mvq::nn::optim::OptimizerKind::sgd(0.1, 0.0, 0.0));
    opt.step(&mut model);
    let mut i = 0;
    model.visit_params_mut(&mut |p| {
        assert_eq!(p.value.data(), before[i].data());
        i += 1;
    });
    let mut adam = mvq::nn::optim::Optimizer::new(mvq::nn::optim::OptimizerKind::adam(0.1));
    adam.step(&mut model);
    model.visit_params_mut(&mut |p| {
        assert!(p.value.data().iter().all(|v| v.is_finite()));
    });
}
