//! # MVQ — Masked Vector Quantization
//!
//! An open-source Rust reproduction of *"MVQ: Towards Efficient DNN
//! Compression and Acceleration with Masked Vector Quantization"*
//! (Li, Wang, et al., ASPLOS 2025).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`tensor`] — minimal n-d `f32` tensor library (GEMM, im2col, int8 quant)
//! * [`nn`] — CNN substrate: layers with backprop, optimizers, a model zoo
//!   (ResNet-18/50-lite, VGG-16-lite, AlexNet-lite, MobileNet-v1/v2-lite,
//!   EfficientNet-lite, DeepLab-lite) and synthetic datasets
//! * [`core`] — the paper's contribution: N:M pruning, masked k-means,
//!   codebook quantization, masked-gradient fine-tuning, plus the VQ
//!   baselines (plain VQ, PQF, BGD, DKM, PvQ), all unified behind the
//!   [`core::Compressor`] trait and the string-keyed
//!   [`core::pipeline::registry`]
//! * [`accel`] — the EWS systolic-array accelerator simulator (six hardware
//!   settings, energy/area/performance models, roofline)
//! * [`serve`] — the compression service: a ticket-based request API
//!   ([`serve::CompressionRequest`] → [`serve::Ticket`]) over a
//!   worker-thread pool with bounded-queue admission control and per-job
//!   error isolation, backed by versioned artifact serialization
//!   ([`core::store`]) in a content-addressed, byte-budgeted LRU cache
//!   (the deprecated v1 batch `submit` remains as a shim)
//! * [`net`] — the service on the wire: a length-prefixed TCP protocol
//!   ([`net::NetServer`] / [`net::NetClient`]) with per-request
//!   deadlines, client-disconnect cancellation, and graceful drain,
//!   framing every message with the store codec so cache blobs serve
//!   zero-copy
//! * [`obs`] — the observability layer: a lock-cheap metrics registry
//!   (counters, gauges, log-scale latency histograms under a pinned
//!   name scheme) plus job-lifecycle span tracing, shared by the
//!   cache, service, and network front and queryable live over the
//!   wire (`paper stats`)
//!
//! ## Quickstart
//!
//! Every algorithm — MVQ and all five baselines — implements
//! [`core::Compressor`] and produces a [`core::CompressedArtifact`] with
//! the same `reconstruct` / `storage` / `compression_ratio` surface:
//!
//! ```
//! use mvq::core::pipeline::{by_name, PipelineSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A weight matrix of 128 subvectors of length 16.
//! let mut rng = StdRng::seed_from_u64(0);
//! let w = mvq::tensor::kaiming_normal(vec![128, 16], 16, &mut rng);
//!
//! // Compress with 4:16 pruning and a 32-codeword masked-k-means codebook.
//! let spec = PipelineSpec::default().with_k(32);
//! let mvq = by_name("mvq", &spec)?;
//! let compressed = mvq.compress_matrix(&w, &mut rng)?;
//! let reconstructed = compressed.reconstruct()?;
//! assert_eq!(reconstructed.dims(), w.dims());
//! println!("compression ratio: {:.1}x", compressed.compression_ratio());
//!
//! // Or sweep every registered algorithm from one loop:
//! for comp in mvq::core::pipeline::registry() {
//!     let artifact = comp.compress_matrix(&w, &mut rng)?;
//!     println!("{:6} {:.1}x", comp.name(), artifact.compression_ratio());
//! }
//! # Ok::<(), mvq::core::MvqError>(())
//! ```
//!
//! Whole models compress the same way ([`core::Compressor::compress_model`]
//! walks a network's convs rayon-parallel with per-layer seeded RNGs), and
//! [`core::ModelCompressor`] adds MVQ's layerwise/crosslayer codebook
//! scopes on top.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub use mvq_accel as accel;
pub use mvq_core as core;
pub use mvq_net as net;
pub use mvq_nn as nn;
pub use mvq_obs as obs;
pub use mvq_serve as serve;
pub use mvq_tensor as tensor;
