//! # MVQ — Masked Vector Quantization
//!
//! An open-source Rust reproduction of *"MVQ: Towards Efficient DNN
//! Compression and Acceleration with Masked Vector Quantization"*
//! (Li, Wang, et al., ASPLOS 2025).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`tensor`] — minimal n-d `f32` tensor library (GEMM, im2col, int8 quant)
//! * [`nn`] — CNN substrate: layers with backprop, optimizers, a model zoo
//!   (ResNet-18/50-lite, VGG-16-lite, AlexNet-lite, MobileNet-v1/v2-lite,
//!   EfficientNet-lite, DeepLab-lite) and synthetic datasets
//! * [`core`] — the paper's contribution: N:M pruning, masked k-means,
//!   codebook quantization, masked-gradient fine-tuning, plus the VQ
//!   baselines (plain VQ, PQF, BGD, PvQ)
//! * [`accel`] — the EWS systolic-array accelerator simulator (six hardware
//!   settings, energy/area/performance models, roofline)
//!
//! ## Quickstart
//!
//! ```
//! use mvq::core::{MvqConfig, MvqCompressor};
//! use mvq::tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A weight matrix of 128 subvectors of length 16.
//! let mut rng = StdRng::seed_from_u64(0);
//! let w = mvq::tensor::kaiming_normal(vec![128, 16], 16, &mut rng);
//!
//! // Compress with 4:16 pruning and a 32-codeword masked-k-means codebook.
//! let cfg = MvqConfig::new(32, 16, 4, 16)?;
//! let compressed = MvqCompressor::new(cfg).compress_matrix(&w, &mut rng)?;
//! let reconstructed = compressed.reconstruct()?;
//! assert_eq!(reconstructed.dims(), w.dims());
//! println!("compression ratio: {:.1}x", compressed.compression_ratio());
//! # Ok::<(), mvq::core::MvqError>(())
//! ```

pub use mvq_accel as accel;
pub use mvq_core as core;
pub use mvq_nn as nn;
pub use mvq_tensor as tensor;
